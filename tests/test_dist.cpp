// Tests for the distributed sweep queue (src/dist): init/manifest round
// trips, the claim state machine under races, lease expiry -> requeue,
// torn task/result files ignored on scan, collect refusing an incomplete
// queue with a named error, the JSON report merge, and the headline
// invariant — three concurrent workers (one of them "crashed" mid-sweep)
// collect to a CSV byte-identical to the single-process run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "dist/lease.hpp"
#include "dist/work_queue.hpp"
#include "dist/worker.hpp"
#include "engine/report.hpp"
#include "engine/spec.hpp"
#include "engine/sweep_runner.hpp"

namespace esched {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

/// A fresh scratch queue directory (removed up front so reruns are
/// clean).
std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "esched_dist_" + name;
  fs::remove_all(dir);
  return dir;
}

/// A cheap deterministic two-scenario sweep (analytic backends only):
/// two spec texts loaded through the engine's one construction path.
LoadedSweep test_sweep() {
  const std::string dir = testing::TempDir() + "esched_dist_specs";
  fs::create_directories(dir);
  write_file(dir + "/a.json", R"json({
    "name": "dist-a",
    "axes": {"k": [2], "rho": [0.5, 0.7, 0.9],
             "mu_i": [0.5, 1, 2], "mu_e": [1],
             "policy": ["IF", "EF"], "solver": ["qbd", "mmk"]}
  })json");
  write_file(dir + "/b.json", R"json({
    "name": "dist-b",
    "axes": {"k": [4], "rho": [0.8], "mu_i": [0.25, 3.25], "mu_e": [1],
             "policy": ["IF", "EF"], "solver": ["qbd"]}
  })json");
  return load_sweep({dir + "/a.json", dir + "/b.json"});
}

void backdate(const std::string& path, std::chrono::seconds by) {
  fs::last_write_time(path, fs::file_time_type::clock::now() - by);
}

TEST(WorkQueueInit, ManifestRoundTripsAndReinitRefused) {
  const std::string dir = scratch_dir("init");
  const LoadedSweep sweep = test_sweep();
  const WorkQueue queue = WorkQueue::init(dir, sweep, 7);

  // 36 + 4 = 40 points in chunks of 7 -> 6 chunks, last one short.
  EXPECT_EQ(sweep.total_points, 40u);
  EXPECT_EQ(queue.manifest().num_chunks, 6u);
  EXPECT_EQ(queue.manifest().chunk_size, 7u);
  EXPECT_FALSE(queue.manifest().with_size_dist);
  ASSERT_EQ(queue.manifest().scenarios.size(), 2u);

  const auto tasks = queue.pending_tasks();
  ASSERT_EQ(tasks.size(), 6u);
  EXPECT_EQ(tasks.front().begin, 0u);
  EXPECT_EQ(tasks.back().end, 40u);
  for (std::size_t n = 1; n < tasks.size(); ++n) {
    EXPECT_EQ(tasks[n].begin, tasks[n - 1].end);  // contiguous, row order
  }

  // Reopening parses the embedded specs back to the same expansion.
  WorkQueue reopened(dir);
  EXPECT_EQ(reopened.expanded_points().size(), 40u);
  EXPECT_EQ(reopened.expanded_points()[0].cache_key(),
            sweep.concatenated()[0].cache_key());
  EXPECT_EQ(reopened.expanded_points()[39].cache_key(),
            sweep.concatenated()[39].cache_key());

  // A directory already holding a queue is refused, not clobbered.
  EXPECT_THROW(WorkQueue::init(dir, sweep, 7), Error);
  // And a non-queue directory is not a queue.
  EXPECT_THROW(WorkQueue(dir + "/tasks"), Error);
  fs::remove_all(dir);
}

TEST(WorkQueueClaim, DuplicateClaimRaceHasOneWinner) {
  const std::string dir = scratch_dir("race");
  const WorkQueue queue = WorkQueue::init(dir, test_sweep(), 7);
  const ChunkTask task = queue.pending_tasks().front();

  // Sequential race: second claim of the same task must lose cleanly.
  EXPECT_TRUE(queue.claim(task, "w1"));
  EXPECT_FALSE(queue.claim(task, "w2"));
  ASSERT_EQ(queue.leases().size(), 1u);
  EXPECT_EQ(queue.leases().front().owner, "w1");
  EXPECT_EQ(queue.pending_tasks().size(), 5u);

  // Threaded race on the next task: exactly one of 8 claimants wins.
  const ChunkTask next = queue.pending_tasks().front();
  std::vector<std::thread> pool;
  std::atomic<int> wins{0};
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&queue, &next, &wins, t] {
      if (queue.claim(next, "racer" + std::to_string(t))) ++wins;
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_EQ(queue.leases().size(), 2u);
  fs::remove_all(dir);
}

TEST(WorkQueueLease, ExpiryRequeuesAndHeartbeatPreventsIt) {
  const std::string dir = scratch_dir("expiry");
  const WorkQueue queue = WorkQueue::init(dir, test_sweep(), 7);
  const ChunkTask task = queue.pending_tasks().front();
  ASSERT_TRUE(queue.claim(task, "crashed"));

  // A live lease is not reclaimed.
  EXPECT_EQ(queue.reclaim_expired(30.0), 0u);
  EXPECT_EQ(queue.pending_tasks().size(), 5u);

  // Crash: the heartbeat goes stale, the chunk is requeued and
  // immediately claimable again.
  backdate(queue.lease_path(task.chunk), std::chrono::seconds(120));
  EXPECT_EQ(queue.counts(30.0).expired, 1u);
  EXPECT_EQ(queue.reclaim_expired(30.0), 1u);
  EXPECT_TRUE(queue.leases().empty());
  ASSERT_EQ(queue.pending_tasks().size(), 6u);
  EXPECT_EQ(queue.pending_tasks().front().chunk, task.chunk);
  EXPECT_TRUE(queue.claim(task, "w2"));

  // A heartbeat resets the clock: after touching, the lease survives.
  backdate(queue.lease_path(task.chunk), std::chrono::seconds(120));
  EXPECT_TRUE(queue.heartbeat(task.chunk));
  EXPECT_EQ(queue.reclaim_expired(30.0), 0u);
  ASSERT_EQ(queue.leases().size(), 1u);
  EXPECT_EQ(queue.leases().front().owner, "w2");
  fs::remove_all(dir);
}

TEST(WorkQueueScan, TornTaskAndResultFilesAreIgnored) {
  const std::string dir = scratch_dir("torn");
  const WorkQueue queue = WorkQueue::init(dir, test_sweep(), 7);

  // Torn / foreign files in tasks/: half-written JSON, a foreign name,
  // an out-of-range chunk id, and inconsistent bounds.
  write_file(dir + "/tasks/chunk-000099.json", "{\"chunk\": 99, \"beg");
  write_file(dir + "/tasks/notes.txt", "not a task");
  write_file(dir + "/tasks/chunk-000042.json",
             "{\"chunk\": 42, \"begin\": 0, \"end\": 7}");
  write_file(dir + "/tasks/chunk-000004.json.tmp.1.2", "partial write");
  EXPECT_EQ(queue.pending_tasks().size(), 6u);  // the real ones only

  // A torn done record reads as "chunk unfinished", so the queue keeps
  // the chunk solvable and collect refuses.
  write_file(queue.done_path(0), "{\"chunk\": 0, \"rows\":");
  EXPECT_EQ(queue.completed().size(), 0u);
  EXPECT_FALSE(queue.counts(30.0).done > 0);

  // A torn lease (no owner parsable) still scans — by age, from the
  // filename — and is reclaimable... but chunk 0's task file still
  // exists, so requeue overwrites it harmlessly.
  write_file(queue.lease_path(1), "{\"chu");
  ASSERT_EQ(queue.leases().size(), 1u);
  EXPECT_EQ(queue.leases().front().owner, "");
  backdate(queue.lease_path(1), std::chrono::seconds(120));
  EXPECT_EQ(queue.reclaim_expired(30.0), 1u);

  // Crashed writers' orphaned tmp files are swept once stale; a fresh
  // one (a live writer mid-store) survives.
  write_file(dir + "/results/chunk-000001.csv.tmp.9.9", "half a csv");
  backdate(dir + "/results/chunk-000001.csv.tmp.9.9",
           std::chrono::seconds(7200));
  backdate(dir + "/tasks/chunk-000004.json.tmp.1.2",
           std::chrono::seconds(7200));
  EXPECT_EQ(queue.sweep_stale_tmp(), 2u);
  write_file(dir + "/results/chunk-000002.csv.tmp.9.9", "live");
  EXPECT_EQ(queue.sweep_stale_tmp(), 0u);
  EXPECT_TRUE(fs::exists(dir + "/results/chunk-000002.csv.tmp.9.9"));
  fs::remove_all(dir);
}

TEST(WorkQueueCollect, RefusesIncompleteQueueWithNamedError) {
  const std::string dir = scratch_dir("incomplete");
  WorkQueue queue = WorkQueue::init(dir, test_sweep(), 7);

  // Solve exactly one chunk.
  WorkerOptions options;
  options.threads = 1;
  options.max_chunks = 1;
  options.owner = "only";
  const WorkerSummary summary = run_worker(dir, options);
  EXPECT_EQ(summary.chunks_solved, 1u);
  EXPECT_FALSE(summary.queue_drained);
  EXPECT_EQ(queue.counts(30.0).done, 1u);

  try {
    queue.collectable_paths(false);
    FAIL() << "collect accepted an incomplete queue";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("incomplete"), std::string::npos) << what;
    EXPECT_NE(what.find("5 of 6 chunks"), std::string::npos) << what;
    EXPECT_NE(what.find("esched work"), std::string::npos) << what;
  }

  // A done marker whose result file vanished is named specifically.
  const ChunkRecord done = queue.completed().front();
  fs::remove(queue.result_csv_path(done.chunk));
  for (std::size_t c = 0; c < queue.manifest().num_chunks; ++c) {
    if (c != done.chunk) {
      write_file(queue.done_path(c),
                 read_file(queue.done_path(done.chunk)));
    }
  }
  try {
    queue.collectable_paths(false);
    FAIL() << "collect accepted a missing result file";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("marked done but its result file"),
              std::string::npos)
        << e.what();
  }
  fs::remove_all(dir);
}

TEST(DistWorkers, ThreeConcurrentWorkersWithACrashCollectByteIdentical) {
  const std::string dir = scratch_dir("e2e");
  const LoadedSweep sweep = test_sweep();

  // The single-process reference: the exact CSV `esched run a b --out`
  // would write.
  const std::vector<RunPoint> all = sweep.concatenated();
  SweepRunner reference_runner(2);
  const auto reference_results = reference_runner.run(all);
  const std::string reference_csv = testing::TempDir() + "dist_reference.csv";
  write_csv_report(reference_csv, all, reference_results,
                   sweep.with_size_dist);

  WorkQueue queue = WorkQueue::init(dir, sweep, 3);  // 14 chunks

  // Simulate a worker that died mid-chunk: a claimed lease whose
  // heartbeat is long stale. The real workers must reclaim and re-solve
  // it.
  const ChunkTask doomed = queue.pending_tasks()[2];
  ASSERT_TRUE(queue.claim(doomed, "crashed-worker"));
  backdate(queue.lease_path(doomed.chunk), std::chrono::seconds(600));

  const auto work = [&dir](const char* owner) {
    WorkerOptions options;
    options.threads = 1;
    options.owner = owner;
    options.lease_ttl_seconds = 5.0;
    options.poll_ms = 20;
    return run_worker(dir, options);
  };
  WorkerSummary s1, s2, s3;
  std::thread w1([&] { s1 = work("w1"); });
  std::thread w2([&] { s2 = work("w2"); });
  std::thread w3([&] { s3 = work("w3"); });
  w1.join();
  w2.join();
  w3.join();

  EXPECT_TRUE(s1.queue_drained && s2.queue_drained && s3.queue_drained);
  EXPECT_EQ(s1.chunks_solved + s2.chunks_solved + s3.chunks_solved, 14u);
  EXPECT_EQ(s1.points_solved + s2.points_solved + s3.points_solved, 40u);
  EXPECT_GE(s1.chunks_requeued + s2.chunks_requeued + s3.chunks_requeued, 1u)
      << "the crashed worker's lease was never reclaimed";

  // Collect: byte-identical to the single-process report.
  const std::string collected_csv = testing::TempDir() + "dist_collected.csv";
  merge_csv_reports(queue.collectable_paths(false), collected_csv);
  EXPECT_EQ(read_file(collected_csv), read_file(reference_csv));

  // And the JSON collect carries the same points with summed stats.
  const std::string collected_json =
      testing::TempDir() + "dist_collected.json";
  const MergeStats json_stats =
      merge_json_reports(queue.collectable_paths(true), collected_json);
  EXPECT_EQ(json_stats.rows, 40u);
  const JsonValue merged =
      parse_json(read_file(collected_json), collected_json);
  EXPECT_EQ(merged.find("points")->as_array("points").size(), 40u);
  EXPECT_EQ(merged.find("stats")
                ->find("total_points")
                ->as_number("stats.total_points"),
            40.0);

  std::remove(reference_csv.c_str());
  std::remove(collected_csv.c_str());
  std::remove(collected_json.c_str());
  fs::remove_all(dir);
}

TEST(DistWorkers, PoisonedChunkFailsTerminallyInsteadOfCyclingTheFleet) {
  // A spec whose solves THROW (qbd rejects non-exponential sizes) must
  // not wedge the fleet in a crash-requeue loop: the chunk is marked
  // failed, never requeued, and collect surfaces the solver's error.
  const std::string dir = scratch_dir("poison");
  const std::string spec_dir = testing::TempDir() + "esched_dist_specs";
  fs::create_directories(spec_dir);
  write_file(spec_dir + "/poison.json", R"json({
    "name": "dist-poison",
    "axes": {"k": [2], "rho": [0.5], "mu_i": [1], "mu_e": [1],
             "policy": ["IF", "EF"], "solver": ["qbd"]},
    "options": {"size_dist_i": "erlang:2"}
  })json");
  const LoadedSweep sweep = load_sweep({spec_dir + "/poison.json"});
  WorkQueue queue = WorkQueue::init(dir, sweep, 1);  // 2 chunks
  ASSERT_EQ(queue.manifest().num_chunks, 2u);

  WorkerOptions options;
  options.threads = 1;
  options.owner = "w1";
  options.poll_ms = 10;
  const WorkerSummary s1 = run_worker(dir, options);
  EXPECT_EQ(s1.chunks_solved, 0u);
  EXPECT_EQ(s1.chunks_failed, 2u);
  EXPECT_EQ(s1.queue_failed, 2u);
  EXPECT_FALSE(s1.queue_drained);

  // A second worker sees the markers, solves nothing, exits promptly —
  // no crash-requeue cycle.
  options.owner = "w2";
  const WorkerSummary s2 = run_worker(dir, options);
  EXPECT_EQ(s2.chunks_solved, 0u);
  EXPECT_EQ(s2.chunks_failed, 0u);
  EXPECT_EQ(s2.queue_failed, 2u);

  const auto failures = queue.failures();
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures.front().owner, "w1");
  EXPECT_NE(failures.front().error.find("size_dist"), std::string::npos)
      << failures.front().error;
  EXPECT_EQ(queue.counts(30.0).failed, 2u);

  try {
    queue.collectable_paths(false);
    FAIL() << "collect accepted a queue with failed chunks";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failed permanently"), std::string::npos) << what;
    EXPECT_NE(what.find("size_dist"), std::string::npos) << what;
  }
  fs::remove_all(dir);
}

TEST(MergeJsonReports, ConcatenatesPointsAndRecomputesStats) {
  const LoadedSweep sweep = test_sweep();
  const std::vector<RunPoint> all = sweep.concatenated();
  SweepRunner runner(2);
  SweepStats stats;
  const auto results = runner.run(all, &stats);

  // Write the unsharded report and two slices, all with stats blocks.
  const std::string full = testing::TempDir() + "mj_full.json";
  const std::string a = testing::TempDir() + "mj_a.json";
  const std::string b = testing::TempDir() + "mj_b.json";
  const std::string merged = testing::TempDir() + "mj_merged.json";
  write_json_report(full, all, results, &stats, sweep.with_size_dist);
  const std::size_t half = all.size() / 2;
  const std::vector<RunPoint> pa(all.begin(), all.begin() + half);
  const std::vector<RunPoint> pb(all.begin() + half, all.end());
  const std::vector<RunResult> ra(results.begin(), results.begin() + half);
  const std::vector<RunResult> rb(results.begin() + half, results.end());
  SweepStats sa = stats, sb = stats;
  sa.total_points = pa.size();
  sb.total_points = pb.size();
  write_json_report(a, pa, ra, &sa, sweep.with_size_dist);
  write_json_report(b, pb, rb, &sb, sweep.with_size_dist);

  const MergeStats merge_stats = merge_json_reports({a, b}, merged);
  EXPECT_EQ(merge_stats.files, 2u);
  EXPECT_EQ(merge_stats.rows, all.size());

  // Merged points == unsharded points, value for value (numbers compare
  // through the parser, so formatting differences cannot hide drift).
  const JsonValue m = parse_json(read_file(merged), merged);
  const JsonValue f = parse_json(read_file(full), full);
  const auto& m_points = m.find("points")->as_array("m.points");
  const auto& f_points = f.find("points")->as_array("f.points");
  ASSERT_EQ(m_points.size(), f_points.size());
  for (std::size_t n = 0; n < m_points.size(); ++n) {
    EXPECT_EQ(m_points[n].dump(), f_points[n].dump()) << "point " << n;
  }
  EXPECT_EQ(m.find("stats")
                ->find("total_points")
                ->as_number("stats.total_points"),
            static_cast<double>(all.size()));

  // Mismatched point schemas refuse to merge (the CSV header check's
  // JSON mirror).
  const std::string odd = testing::TempDir() + "mj_odd.json";
  write_file(odd, "{\n  \"points\": [\n    {\"k\": 1, \"weird\": 2}\n  ]\n}\n");
  EXPECT_THROW(merge_json_reports({a, odd}, merged), Error);
  // And a non-report JSON document is named, not mangled.
  write_file(odd, "{\"rows\": []}");
  EXPECT_THROW(merge_json_reports({odd}, merged), Error);

  // merge --out may name an input (temp + rename, like the CSV merge).
  const MergeStats inplace = merge_json_reports({a, b}, b);
  EXPECT_EQ(inplace.rows, all.size());

  for (const auto& path : {full, a, b, merged, odd}) {
    std::remove(path.c_str());
  }
}

TEST(ChunkRanges, CoverExactlyAndLastIsShort) {
  const auto ranges = chunk_ranges(10, 4);
  ASSERT_EQ(ranges.size(), 3u);
  const std::pair<std::size_t, std::size_t> expected[] = {
      {0, 4}, {4, 8}, {8, 10}};
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(ranges[n].first, expected[n].first);
    EXPECT_EQ(ranges[n].second, expected[n].second);
  }
  EXPECT_TRUE(chunk_ranges(0, 4).empty());
  EXPECT_EQ(chunk_ranges(4, 4).size(), 1u);
  EXPECT_EQ(chunk_ranges(1, 100).size(), 1u);
  EXPECT_THROW(chunk_ranges(10, 0), Error);
}

}  // namespace
}  // namespace esched
