// Tests for online SRPT-k with release times and its lower bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "srpt/lp_bound.hpp"
#include "srpt/srpt_online.hpp"

namespace esched {
namespace {

TEST(SrptOnline, SingleJobRunsAtRelease) {
  const OnlineScheduleResult r =
      srpt_k_online({{2.0, 4.0, 2.0}}, 4);
  // Released at 2, size 4, cap 2: finishes at 2 + 2 = 4; response 2.
  EXPECT_DOUBLE_EQ(r.completion_times[0], 4.0);
  EXPECT_DOUBLE_EQ(r.total_response_time, 2.0);
}

TEST(SrptOnline, PreemptsForShorterArrival) {
  // k = 1. Long job (size 10) at t = 0; short job (size 1) at t = 1.
  // SRPT preempts: short finishes at 2, long at 11.
  const OnlineScheduleResult r =
      srpt_k_online({{0.0, 10.0, 1.0}, {1.0, 1.0, 1.0}}, 1);
  EXPECT_DOUBLE_EQ(r.completion_times[1], 2.0);
  EXPECT_DOUBLE_EQ(r.completion_times[0], 11.0);
  EXPECT_DOUBLE_EQ(r.total_response_time, 11.0 + 1.0);
}

TEST(SrptOnline, IdlesUntilFirstRelease) {
  const OnlineScheduleResult r =
      srpt_k_online({{5.0, 1.0, 1.0}, {6.0, 1.0, 1.0}}, 2);
  EXPECT_DOUBLE_EQ(r.completion_times[0], 6.0);
  EXPECT_DOUBLE_EQ(r.completion_times[1], 7.0);
}

TEST(SrptOnline, MatchesBatchVariantWhenOrderIsStable) {
  // With all releases at 0 and caps 1 on k = 2, remaining-size priority
  // equals inherent-size priority throughout (prefix jobs finish first),
  // so online SRPT-k equals the batch scheduler.
  const std::vector<OnlineJob> online = {
      {0.0, 3.0, 1.0}, {0.0, 1.0, 1.0}, {0.0, 2.0, 1.0}, {0.0, 5.0, 1.0}};
  std::vector<BatchJob> batch;
  for (const auto& j : online) batch.push_back({j.size, j.cap});
  const OnlineScheduleResult a = srpt_k_online(online, 2);
  const BatchScheduleResult b = srpt_k_schedule(batch, 2);
  EXPECT_NEAR(a.total_response_time, b.total_response_time, 1e-12);
}

TEST(SrptOnline, RejectsBadInput) {
  EXPECT_THROW(srpt_k_online({}, 2), Error);
  EXPECT_THROW(srpt_k_online({{-1.0, 1.0, 1.0}}, 2), Error);
  EXPECT_THROW(srpt_k_online({{0.0, 0.0, 1.0}}, 2), Error);
  EXPECT_THROW(srpt_k_online({{0.0, 1.0, 1.0}}, 0), Error);
}

TEST(SingleMachineSrpt, KnownSchedule) {
  // Speed 1, jobs (0, 3), (1, 1): SRPT runs job0 for 1, preempts for
  // job1 (finishes at 2), job0 finishes at 4. Total = 4 + 1.
  const double cost =
      single_machine_srpt_cost({{0.0, 3.0, 1.0}, {1.0, 1.0, 1.0}}, 1.0);
  EXPECT_DOUBLE_EQ(cost, 5.0);
}

TEST(SingleMachineSrpt, SpeedScales) {
  const std::vector<OnlineJob> jobs = {{0.0, 4.0, 1.0}, {0.0, 2.0, 1.0}};
  // Speed 2: sizes effectively halved, no releases: cost halves.
  EXPECT_DOUBLE_EQ(single_machine_srpt_cost(jobs, 2.0),
                   single_machine_srpt_cost(jobs, 1.0) / 2.0);
}

TEST(OnlineLowerBound, BelowTheAlgorithmOnRandomInstances) {
  Xoshiro256 rng(2718);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 5 + static_cast<int>(uniform_index(rng, 80));
    const int k = 1 + static_cast<int>(uniform_index(rng, 8));
    std::vector<OnlineJob> jobs;
    double t = 0.0;
    for (int j = 0; j < n; ++j) {
      t += exponential(rng, 1.0);
      jobs.push_back({t, std::exp(uniform(rng, -1.5, 2.0)),
                      bernoulli(rng, 0.5)
                          ? 1.0
                          : 1.0 + std::floor(uniform(rng, 0.0, 1.5 * k))});
    }
    const double alg = srpt_k_online(jobs, k).total_response_time;
    const double lb = online_lower_bound(jobs, k);
    ASSERT_GT(lb, 0.0);
    EXPECT_GE(alg, lb * (1.0 - 1e-9)) << "trial " << trial;
    // Not a theorem here, but on non-adversarial traffic online SRPT-k
    // stays within a small constant of the relaxation.
    EXPECT_LE(alg / lb, 8.0) << "trial " << trial;
  }
}

TEST(OnlineLowerBound, ProcessingBoundBindsForCappedJobs) {
  // One huge capped job alone: the processing bound x/min(cap,k) exceeds
  // the speed-k relaxation x/k.
  const std::vector<OnlineJob> jobs = {{0.0, 100.0, 1.0}};
  const double lb = online_lower_bound(jobs, 8);
  EXPECT_DOUBLE_EQ(lb, 100.0);  // not 100/8
}

TEST(SrptOnline, SingleServerEqualsSingleMachineSrpt) {
  // On k = 1 the multi-server scheduler IS single-machine SRPT (caps are
  // irrelevant), and single-machine SRPT is optimal — so the two engines
  // must agree exactly and the "lower bound" is tight.
  Xoshiro256 rng(31415);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<OnlineJob> jobs;
    double t = 0.0;
    const int n = 10 + static_cast<int>(uniform_index(rng, 60));
    for (int j = 0; j < n; ++j) {
      t += exponential(rng, 0.8);
      jobs.push_back({t, std::exp(uniform(rng, -1.0, 1.5)),
                      1.0 + std::floor(uniform(rng, 0.0, 3.0))});
    }
    const double multi = srpt_k_online(jobs, 1).total_response_time;
    const double single = single_machine_srpt_cost(jobs, 1.0);
    EXPECT_NEAR(multi, single, 1e-9 * multi) << "trial " << trial;
    EXPECT_NEAR(online_lower_bound(jobs, 1), multi, 1e-9 * multi);
  }
}

}  // namespace
}  // namespace esched
