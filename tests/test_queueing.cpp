// Unit tests for the M/M/1 and M/M/k closed forms, cross-checked against
// stationary solves of the corresponding truncated chains.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "markov/ctmc.hpp"
#include "markov/stationary.hpp"
#include "queueing/mm1.hpp"
#include "queueing/mmk.hpp"

namespace esched {
namespace {

TEST(MM1, KnownClosedForms) {
  const MM1 q(0.5, 1.0);
  EXPECT_TRUE(q.stable());
  EXPECT_DOUBLE_EQ(q.utilization(), 0.5);
  EXPECT_DOUBLE_EQ(q.mean_response_time(), 2.0);
  EXPECT_DOUBLE_EQ(q.mean_jobs(), 1.0);
  EXPECT_DOUBLE_EQ(q.mean_wait(), 1.0);
}

TEST(MM1, LittlesLawConsistency) {
  for (double rho : {0.1, 0.5, 0.9}) {
    const MM1 q(rho * 3.0, 3.0);
    EXPECT_NEAR(q.mean_jobs(), q.lambda * q.mean_response_time(), 1e-12);
  }
}

TEST(MM1, UnstableThrows) {
  const MM1 q(2.0, 1.0);
  EXPECT_FALSE(q.stable());
  EXPECT_THROW(q.mean_response_time(), Error);
  EXPECT_THROW(q.busy_period_moments(), Error);
}

TEST(MM1, BusyPeriodScvGrowsWithLoad) {
  // C^2 of the busy period is (1+rho)/(1-rho): increasing in rho.
  double prev = 0.0;
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const Moments3 m = MM1(rho, 1.0).busy_period_moments();
    const double scv = m.scv();
    EXPECT_NEAR(scv, (1.0 + rho) / (1.0 - rho), 1e-9) << rho;
    EXPECT_GT(scv, prev);
    prev = scv;
  }
}

TEST(MM1, MeanJobsMatchesStationarySolve) {
  const double lambda = 0.65;
  const double mu = 1.0;
  const std::size_t n = 80;
  SparseCtmc chain(n);
  for (std::size_t s = 0; s + 1 < n; ++s) {
    chain.add_rate(s, s + 1, lambda);
    chain.add_rate(s + 1, s, mu);
  }
  chain.freeze();
  const Vector pi = gth_stationary(chain);
  double mean = 0.0;
  for (std::size_t s = 0; s < n; ++s) mean += static_cast<double>(s) * pi[s];
  EXPECT_NEAR(mean, MM1(lambda, mu).mean_jobs(), 1e-8);
}

TEST(MMk, ReducesToMM1WhenKIs1) {
  const MMk q(0.6, 1.0, 1);
  const MM1 ref(0.6, 1.0);
  EXPECT_NEAR(q.mean_response_time(), ref.mean_response_time(), 1e-12);
  EXPECT_NEAR(q.mean_jobs(), ref.mean_jobs(), 1e-12);
  // Erlang-C of M/M/1 equals the utilization.
  EXPECT_NEAR(q.erlang_c(), 0.6, 1e-12);
}

TEST(MMk, ErlangBKnownValues) {
  // Classic check: offered load 2 on 3 servers => B = (8/6)/(1+2+2+8/6).
  const MMk q(2.0, 1.0, 3);
  const double expected = (4.0 / 3.0) / (1.0 + 2.0 + 2.0 + 4.0 / 3.0);
  EXPECT_NEAR(q.erlang_b(), expected, 1e-12);
}

TEST(MMk, MeanJobsMatchesStationarySolve) {
  const double lambda = 2.6;
  const double mu = 1.0;
  const int k = 4;
  const std::size_t n = 120;
  SparseCtmc chain(n);
  for (std::size_t s = 0; s + 1 < n; ++s) {
    chain.add_rate(s, s + 1, lambda);
    chain.add_rate(s + 1, s,
                   std::min<double>(static_cast<double>(s + 1), k) * mu);
  }
  chain.freeze();
  const Vector pi = gth_stationary(chain);
  double mean = 0.0;
  for (std::size_t s = 0; s < n; ++s) mean += static_cast<double>(s) * pi[s];
  EXPECT_NEAR(mean, MMk(lambda, mu, k).mean_jobs(), 1e-7);
}

TEST(MMk, WaitDecreasesWithMoreServers) {
  // Fixed utilization 0.8: pooling reduces waiting.
  double prev = 1e9;
  for (int k : {1, 2, 4, 8, 16}) {
    const MMk q(0.8 * k, 1.0, k);
    EXPECT_LT(q.mean_wait(), prev);
    prev = q.mean_wait();
  }
}

TEST(MMk, UnstableThrows) {
  const MMk q(5.0, 1.0, 4);
  EXPECT_FALSE(q.stable());
  EXPECT_THROW(q.mean_wait(), Error);
}

TEST(MMk, RejectsBadParameters) {
  EXPECT_THROW(MMk(1.0, 0.0, 2), Error);
  EXPECT_THROW(MMk(-1.0, 1.0, 2), Error);
  EXPECT_THROW(MMk(1.0, 1.0, 0), Error);
}

}  // namespace
}  // namespace esched
