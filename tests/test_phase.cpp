// Unit tests for phase-type distributions and the three-moment Coxian fit
// (the §5.2 busy-period transformation machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "phase/fit.hpp"
#include "phase/phase_type.hpp"
#include "queueing/mm1.hpp"
#include "rng/xoshiro.hpp"
#include "stats/accumulator.hpp"

namespace esched {
namespace {

TEST(PhaseType, ExponentialMoments) {
  const PhaseType d = PhaseType::exponential(2.0);
  EXPECT_NEAR(d.mean(), 0.5, 1e-12);
  EXPECT_NEAR(d.raw_moment(2), 0.5, 1e-12);        // 2/rate^2
  EXPECT_NEAR(d.raw_moment(3), 6.0 / 8.0, 1e-12);  // 6/rate^3
  EXPECT_NEAR(d.scv(), 1.0, 1e-12);
}

TEST(PhaseType, ErlangMoments) {
  const int n = 4;
  const double rate = 3.0;
  const PhaseType d = PhaseType::erlang(n, rate);
  EXPECT_NEAR(d.mean(), n / rate, 1e-12);
  EXPECT_NEAR(d.variance(), n / (rate * rate), 1e-12);
  EXPECT_NEAR(d.scv(), 1.0 / n, 1e-12);
}

TEST(PhaseType, HyperexponentialMoments) {
  // Mixture 0.3 Exp(1) + 0.7 Exp(5).
  const PhaseType d = PhaseType::hyperexponential({0.3, 0.7}, {1.0, 5.0});
  const double m1 = 0.3 / 1.0 + 0.7 / 5.0;
  const double m2 = 0.3 * 2.0 / 1.0 + 0.7 * 2.0 / 25.0;
  const double m3 = 0.3 * 6.0 / 1.0 + 0.7 * 6.0 / 125.0;
  EXPECT_NEAR(d.mean(), m1, 1e-12);
  EXPECT_NEAR(d.raw_moment(2), m2, 1e-12);
  EXPECT_NEAR(d.raw_moment(3), m3, 1e-12);
  EXPECT_GT(d.scv(), 1.0);
}

TEST(PhaseType, Coxian2Moments) {
  // Coxian(nu1=2, nu2=1, p=0.5): m1 = 1/2 + 0.5 * 1 = 1.
  const PhaseType d = PhaseType::coxian2(2.0, 1.0, 0.5);
  EXPECT_NEAR(d.mean(), 1.0, 1e-12);
  // m2 = 2 (1/nu1^2 + p/(nu1 nu2) + p/nu2^2) = 2 (0.25 + 0.25 + 0.5) = 2.
  EXPECT_NEAR(d.raw_moment(2), 2.0, 1e-12);
}

TEST(PhaseType, CdfMatchesExponentialClosedForm) {
  const PhaseType d = PhaseType::exponential(1.5);
  for (double t : {0.1, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(d.cdf(t), 1.0 - std::exp(-1.5 * t), 1e-10) << t;
  }
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
}

TEST(PhaseType, CdfIsMonotoneAndReachesOne) {
  const PhaseType d = PhaseType::coxian2(2.0, 0.5, 0.7);
  double prev = 0.0;
  for (double t = 0.0; t <= 40.0; t += 0.5) {
    const double f = d.cdf(t);
    EXPECT_GE(f, prev - 1e-12);
    prev = f;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

TEST(PhaseType, SamplingMatchesMoments) {
  const PhaseType d = PhaseType::coxian2(2.0, 1.0, 0.5);
  Xoshiro256 rng(11);
  MomentAccumulator acc;
  for (int n = 0; n < 300000; ++n) acc.add(d.sample(rng));
  EXPECT_NEAR(acc.raw_moment(1), d.raw_moment(1), 0.01);
  EXPECT_NEAR(acc.raw_moment(2) / d.raw_moment(2), 1.0, 0.03);
}

TEST(PhaseType, HyperexponentialSamplingUsesAllBranches) {
  const PhaseType d = PhaseType::hyperexponential({0.5, 0.5}, {10.0, 0.1});
  Xoshiro256 rng(12);
  Accumulator acc;
  for (int n = 0; n < 200000; ++n) acc.add(d.sample(rng));
  EXPECT_NEAR(acc.mean(), d.mean(), 0.1);
}

TEST(PhaseType, RejectsInvalidConstruction) {
  Matrix bad(1, 1);
  bad(0, 0) = 1.0;  // positive diagonal
  EXPECT_THROW(PhaseType(Vector{1.0}, bad), Error);
  Matrix ok(1, 1);
  ok(0, 0) = -1.0;
  EXPECT_THROW(PhaseType(Vector{0.5}, ok), Error);  // alpha sum != 1
  EXPECT_THROW(PhaseType::coxian2(0.0, 1.0, 0.5), Error);
  EXPECT_THROW(PhaseType::coxian2(1.0, 1.0, 1.5), Error);
  EXPECT_THROW(PhaseType::erlang(0, 1.0), Error);
}

TEST(Coxian2Fit, RoundTripsKnownCoxians) {
  // Fit the moments of known Coxian-2s; the fitted distribution must
  // reproduce all three moments even if the parameters differ.
  const struct {
    double nu1, nu2, p;
  } cases[] = {{2.0, 1.0, 0.5}, {5.0, 0.5, 0.2}, {1.0, 0.9, 0.9}};
  for (const auto& c : cases) {
    const PhaseType original = PhaseType::coxian2(c.nu1, c.nu2, c.p);
    const Moments3 m = original.moments3();
    if (!coxian2_feasible(m)) continue;  // low-variability Coxians skip
    const PhaseType fitted = fit_coxian2(m).to_phase_type();
    EXPECT_NEAR(fitted.raw_moment(1) / m.m1, 1.0, 1e-9);
    EXPECT_NEAR(fitted.raw_moment(2) / m.m2, 1.0, 1e-9);
    EXPECT_NEAR(fitted.raw_moment(3) / m.m3, 1.0, 1e-7);
  }
}

TEST(Coxian2Fit, MatchesExponentialExactly) {
  const Moments3 m = {2.0, 8.0, 48.0};  // Exp(0.5)
  ASSERT_TRUE(coxian2_feasible(m));
  const Coxian2Params fit = fit_coxian2(m);
  EXPECT_NEAR(fit.nu1, 0.5, 1e-9);
  EXPECT_NEAR(fit.p, 0.0, 1e-9);
}

TEST(Coxian2Fit, FitsMM1BusyPeriods) {
  // The actual §5.2 use case: busy periods at a range of loads.
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 0.95}) {
    const MM1 queue(rho * 2.0, 2.0);
    const Moments3 m = queue.busy_period_moments();
    ASSERT_TRUE(coxian2_feasible(m)) << "rho=" << rho;
    const PhaseType fitted = fit_coxian2(m).to_phase_type();
    EXPECT_NEAR(fitted.raw_moment(1) / m.m1, 1.0, 1e-9) << "rho=" << rho;
    EXPECT_NEAR(fitted.raw_moment(2) / m.m2, 1.0, 1e-9) << "rho=" << rho;
    EXPECT_NEAR(fitted.raw_moment(3) / m.m3, 1.0, 1e-6) << "rho=" << rho;
  }
}

TEST(Coxian2Fit, FeasibilityBoundary) {
  // SCV < 1 is infeasible for a Coxian-2 initial-phase-1 representation.
  const PhaseType erl = PhaseType::erlang(3, 1.0);
  EXPECT_FALSE(coxian2_feasible(erl.moments3()));
  EXPECT_THROW(fit_coxian2(erl.moments3()), Error);
  // Third moment below the bound is infeasible too.
  Moments3 bad = {1.0, 3.0, 1.0};
  EXPECT_FALSE(coxian2_feasible(bad));
}

TEST(FitMoments3, HighVariabilityUsesCoxian) {
  const PhaseType hyper = PhaseType::hyperexponential({0.4, 0.6}, {0.5, 4.0});
  const Moments3 m = hyper.moments3();
  const PhaseType fitted = fit_moments3(m);
  EXPECT_NEAR(fitted.raw_moment(1) / m.m1, 1.0, 1e-9);
  EXPECT_NEAR(fitted.raw_moment(2) / m.m2, 1.0, 1e-9);
  EXPECT_NEAR(fitted.raw_moment(3) / m.m3, 1.0, 1e-6);
}

TEST(FitMoments3, LowVariabilityFallsBackToMixedErlang) {
  const PhaseType erl = PhaseType::erlang(5, 2.0);
  const Moments3 m = erl.moments3();
  const PhaseType fitted = fit_moments3(m);
  // Two moments exact; the third is whatever the mixed-Erlang family gives.
  EXPECT_NEAR(fitted.raw_moment(1) / m.m1, 1.0, 1e-9);
  EXPECT_NEAR(fitted.raw_moment(2) / m.m2, 1.0, 1e-9);
}

}  // namespace
}  // namespace esched
