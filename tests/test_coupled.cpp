// The Theorem 3 experiment: on ANY fixed arrival sequence, IF's total work
// W(t) and inelastic work W_I(t) are pointwise at most those of every
// policy in P (work-conserving, inelastic-FCFS). We replay random traces
// under IF and several members of P and assert pointwise dominance at all
// breakpoints and midpoints of the piecewise-linear work paths.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/policies.hpp"
#include "sim/coupled.hpp"
#include "sim/trace.hpp"

namespace esched {
namespace {

struct CoupledCase {
  double mu_i;
  double mu_e;
  double rho;
  std::uint64_t seed;
};

class Theorem3Dominance : public testing::TestWithParam<CoupledCase> {};

TEST_P(Theorem3Dominance, IfDominatesClassP) {
  const CoupledCase& c = GetParam();
  const int k = 4;
  const SystemParams p = SystemParams::from_load(k, c.mu_i, c.mu_e, c.rho);
  const Trace trace = generate_trace(p, 400.0, c.seed);
  ASSERT_GT(trace.num_jobs(), 0u);

  const WorkPath if_path = run_on_trace(trace, p, InelasticFirst{});
  const std::vector<PolicyPtr> family = {
      make_elastic_first(), make_fair_share(), make_inelastic_cap(1),
      make_inelastic_cap(2), make_inelastic_cap(3)};
  for (const auto& policy : family) {
    const WorkPath other = run_on_trace(trace, p, *policy);
    const DominanceReport report = check_dominance(if_path, other);
    // Exact arithmetic would give 0; allow accumulated float error.
    EXPECT_LT(report.max_total_violation, 1e-7)
        << policy->name() << " total work, seed=" << c.seed;
    EXPECT_LT(report.max_inelastic_violation, 1e-7)
        << policy->name() << " inelastic work, seed=" << c.seed;
    EXPECT_GT(report.num_checkpoints, 100u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TraceGrid, Theorem3Dominance,
    testing::Values(CoupledCase{1.0, 1.0, 0.6, 101},
                    CoupledCase{2.0, 1.0, 0.8, 102},
                    CoupledCase{0.25, 1.0, 0.9, 103},  // even when EF wins on E[T]!
                    CoupledCase{3.25, 1.0, 0.7, 104},
                    CoupledCase{1.0, 1.0, 0.95, 105}));

TEST(WorkPath, EvaluatesPiecewiseLinearly) {
  // Hand-built path: W = 4 at t=0 depleting at rate 2 until t=1, then
  // W = 2 depleting at rate 1.
  WorkPath path({{0.0, 4.0, 1.0, 2.0, 0.5}, {1.0, 2.0, 0.5, 1.0, 0.5}});
  EXPECT_DOUBLE_EQ(path.total_work_at(0.0), 4.0);
  EXPECT_DOUBLE_EQ(path.total_work_at(0.5), 3.0);
  EXPECT_DOUBLE_EQ(path.total_work_at(1.0), 2.0);
  EXPECT_DOUBLE_EQ(path.total_work_at(1.5), 1.5);
  EXPECT_DOUBLE_EQ(path.inelastic_work_at(0.5), 0.75);
}

TEST(WorkPath, WorkNeverNegative) {
  WorkPath path({{0.0, 1.0, 0.5, 10.0, 10.0}});
  EXPECT_DOUBLE_EQ(path.total_work_at(100.0), 0.0);
}

TEST(RunOnTrace, ConservesWork) {
  // Work drained by the end of the replay equals total arriving work.
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const Trace trace = generate_trace(p, 100.0, 7);
  const WorkPath path = run_on_trace(trace, p, InelasticFirst{});
  // Work tracking accumulates float error proportional to total work.
  EXPECT_NEAR(path.samples().back().total_work, 0.0,
              1e-9 * trace.total_work());
  // The path starts with the first state's work (0 before any arrival).
  EXPECT_DOUBLE_EQ(path.samples().front().total_work, 0.0);
}

TEST(RunOnTrace, InitialBatchIsProcessed) {
  SystemParams p;
  p.k = 2;
  p.mu_i = 1.0;
  p.mu_e = 2.0;
  const Trace batch = initial_batch_trace({{0.0, false, 1.0},
                                           {0.0, false, 1.0},
                                           {0.0, true, 1.0}});
  const WorkPath path = run_on_trace(batch, p, InelasticFirst{});
  EXPECT_DOUBLE_EQ(path.samples().front().total_work, 3.0);
  EXPECT_DOUBLE_EQ(path.samples().back().total_work, 0.0);
  // IF serves both inelastic jobs first: with k=2 and unit sizes they
  // finish at t=1; the elastic job then takes 1/2 on 2 servers.
  EXPECT_DOUBLE_EQ(path.end_time(), 1.5);
}

TEST(RunOnTrace, EfOnInitialBatch) {
  SystemParams p;
  p.k = 2;
  p.mu_i = 1.0;
  p.mu_e = 2.0;
  const Trace batch = initial_batch_trace({{0.0, false, 1.0},
                                           {0.0, false, 1.0},
                                           {0.0, true, 1.0}});
  const WorkPath path = run_on_trace(batch, p, ElasticFirst{});
  // EF: elastic job on 2 servers finishes at 0.5; the two inelastic jobs
  // then run in parallel, finishing at 1.5.
  EXPECT_DOUBLE_EQ(path.end_time(), 1.5);
  EXPECT_DOUBLE_EQ(path.total_work_at(0.5), 2.0);
}

TEST(Trace, GeneratedTraceIsSortedAndSized) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.8);
  const Trace trace = generate_trace(p, 500.0, 42);
  EXPECT_GT(trace.num_jobs(), 100u);
  for (std::size_t n = 1; n < trace.arrivals.size(); ++n) {
    EXPECT_GE(trace.arrivals[n].time, trace.arrivals[n - 1].time);
  }
  EXPECT_GT(trace.total_work(), 0.0);
  // Expected arrivals ~ (lambda_i + lambda_e) * horizon; loose 3-sigma.
  const double expected =
      (p.lambda_i + p.lambda_e) * trace.horizon;
  EXPECT_NEAR(static_cast<double>(trace.num_jobs()), expected,
              4.0 * std::sqrt(expected));
}

TEST(Trace, ClassStreamsAreIndependent) {
  // Changing elastic parameters must not disturb the inelastic arrivals.
  SystemParams a = SystemParams::from_load(4, 1.0, 1.0, 0.8);
  SystemParams b = a;
  b.lambda_e *= 2.0;
  const Trace ta = generate_trace(a, 200.0, 9);
  const Trace tb = generate_trace(b, 200.0, 9);
  std::vector<double> ia, ib;
  for (const auto& arr : ta.arrivals) {
    if (!arr.elastic) ia.push_back(arr.time);
  }
  for (const auto& arr : tb.arrivals) {
    if (!arr.elastic) ib.push_back(arr.time);
  }
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t n = 0; n < ia.size(); ++n) EXPECT_EQ(ia[n], ib[n]);
}

}  // namespace
}  // namespace esched
