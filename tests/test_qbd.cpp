// Unit tests for the QBD matrix-analytic solver: validated against M/M/1
// (single phase), M/M/k (boundary levels), and brute-force GTH solves of
// deeply truncated versions of the same processes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "markov/ctmc.hpp"
#include "markov/stationary.hpp"
#include "qbd/qbd.hpp"
#include "queueing/mm1.hpp"
#include "queueing/mmk.hpp"

namespace esched {
namespace {

/// M/M/1 as a QBD with a single phase.
QbdProcess mm1_qbd(double lambda, double mu) {
  QbdProcess p;
  p.num_phases = 1;
  p.first_repeating = 1;
  Matrix up(1, 1);
  up(0, 0) = lambda;
  Matrix zero(1, 1);
  Matrix down(1, 1);
  down(0, 0) = mu;
  p.up = {up};
  p.local = {zero};
  p.down = {zero};
  p.rep_up = up;
  p.rep_local = zero;
  p.rep_down = down;
  return p;
}

/// M/M/k as a QBD: single phase, boundary levels 0..k-1 with service i*mu.
QbdProcess mmk_qbd(double lambda, double mu, int k) {
  QbdProcess p;
  p.num_phases = 1;
  p.first_repeating = static_cast<std::size_t>(k);
  Matrix up(1, 1);
  up(0, 0) = lambda;
  Matrix zero(1, 1);
  for (int l = 0; l < k; ++l) {
    Matrix down(1, 1);
    down(0, 0) = static_cast<double>(l) * mu;
    p.up.push_back(up);
    p.local.push_back(zero);
    p.down.push_back(down);
  }
  Matrix rep_down(1, 1);
  rep_down(0, 0) = static_cast<double>(k) * mu;
  p.rep_up = up;
  p.rep_local = zero;
  p.rep_down = rep_down;
  return p;
}

TEST(Qbd, MM1GeometricSolution) {
  const double lambda = 0.6;
  const double mu = 1.0;
  const QbdSolution sol = solve_qbd(mm1_qbd(lambda, mu));
  const double rho = lambda / mu;
  // R is scalar rho; levels are geometric; mean level is rho/(1-rho).
  EXPECT_NEAR(sol.r(0, 0), rho, 1e-12);
  EXPECT_NEAR(sol.spectral_radius, rho, 1e-10);
  EXPECT_NEAR(sol.level_probability(0), 1.0 - rho, 1e-12);
  EXPECT_NEAR(sol.level_probability(5), (1.0 - rho) * std::pow(rho, 5),
              1e-12);
  EXPECT_NEAR(sol.mean_level(), MM1(lambda, mu).mean_jobs(), 1e-10);
}

TEST(Qbd, MMkMatchesErlangC) {
  for (int k : {2, 4, 7}) {
    const double mu = 1.0;
    const double lambda = 0.75 * k * mu;
    const QbdSolution sol = solve_qbd(mmk_qbd(lambda, mu, k));
    EXPECT_NEAR(sol.mean_level(), MMk(lambda, mu, k).mean_jobs(), 1e-9)
        << "k=" << k;
  }
}

/// A two-phase QBD with phase switching, solved both matrix-analytically
/// and by GTH on a deep truncation.
QbdProcess two_phase_qbd() {
  QbdProcess p;
  p.num_phases = 2;
  p.first_repeating = 1;
  Matrix up(2, 2);
  up(0, 0) = 0.5;  // arrivals in phase 0
  up(1, 1) = 0.2;  // slower arrivals in phase 1
  Matrix local(2, 2);
  local(0, 1) = 0.3;  // phase flip rates
  local(1, 0) = 0.7;
  Matrix down0(2, 2);
  Matrix down(2, 2);
  down(0, 0) = 1.0;  // service in phase 0
  down(1, 1) = 0.4;  // slower service in phase 1
  p.up = {up};
  p.local = {local};
  p.down = {down0};
  p.rep_up = up;
  p.rep_local = local;
  p.rep_down = down;
  return p;
}

TEST(Qbd, TwoPhaseAgreesWithTruncatedGth) {
  const QbdProcess p = two_phase_qbd();
  const QbdSolution sol = solve_qbd(p);
  EXPECT_LT(sol.r_residual, 1e-10);
  EXPECT_LT(sol.spectral_radius, 1.0);

  // Brute force: truncate at 200 levels and solve with GTH.
  const std::size_t levels = 200;
  SparseCtmc chain(levels * 2);
  const auto idx = [](std::size_t level, std::size_t phase) {
    return level * 2 + phase;
  };
  for (std::size_t l = 0; l < levels; ++l) {
    for (std::size_t s = 0; s < 2; ++s) {
      if (l + 1 < levels) {
        chain.add_rate(idx(l, s), idx(l + 1, s), p.rep_up(s, s));
      }
      for (std::size_t s2 = 0; s2 < 2; ++s2) {
        if (s2 != s && p.rep_local(s, s2) > 0) {
          chain.add_rate(idx(l, s), idx(l, s2), p.rep_local(s, s2));
        }
      }
      if (l >= 1 && p.rep_down(s, s) > 0) {
        chain.add_rate(idx(l, s), idx(l - 1, s), p.rep_down(s, s));
      }
    }
  }
  chain.freeze();
  const Vector pi = gth_stationary(chain);

  // Compare level distributions and the mean.
  double mean = 0.0;
  for (std::size_t l = 0; l < levels; ++l) {
    const double mass = pi[idx(l, 0)] + pi[idx(l, 1)];
    mean += static_cast<double>(l) * mass;
    if (l <= 10) {
      EXPECT_NEAR(sol.level_probability(l), mass, 1e-8) << "level " << l;
    }
  }
  EXPECT_NEAR(sol.mean_level(), mean, 1e-6);

  // Phase marginal must also agree.
  const Vector marginal = sol.phase_marginal();
  double phase0 = 0.0;
  for (std::size_t l = 0; l < levels; ++l) phase0 += pi[idx(l, 0)];
  EXPECT_NEAR(marginal[0], phase0, 1e-8);
  EXPECT_NEAR(marginal[0] + marginal[1], 1.0, 1e-10);
}

TEST(Qbd, BoundaryLevelsWithDifferentRates) {
  // M/M/3-style: three boundary levels, checked against GTH truncation.
  const QbdProcess p = mmk_qbd(2.0, 1.0, 3);
  const QbdSolution sol = solve_qbd(p);

  const std::size_t levels = 150;
  SparseCtmc chain(levels);
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    chain.add_rate(l, l + 1, 2.0);
  }
  for (std::size_t l = 1; l < levels; ++l) {
    chain.add_rate(l, l - 1, std::min<double>(static_cast<double>(l), 3.0));
  }
  chain.freeze();
  const Vector pi = gth_stationary(chain);
  for (std::size_t l = 0; l <= 8; ++l) {
    EXPECT_NEAR(sol.level_probability(l), pi[l], 1e-9) << "level " << l;
  }
}

TEST(Qbd, ProbabilitiesSumToOne) {
  const QbdSolution sol = solve_qbd(two_phase_qbd());
  double total = 0.0;
  for (std::size_t l = 0; l < 2000; ++l) total += sol.level_probability(l);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Qbd, UnstableProcessThrows) {
  EXPECT_THROW(solve_qbd(mm1_qbd(2.0, 1.0)), Error);
}

TEST(Qbd, ValidateCatchesShapeErrors) {
  QbdProcess p = mm1_qbd(0.5, 1.0);
  p.rep_down = Matrix(2, 2);
  EXPECT_THROW(p.validate(), Error);
  QbdProcess q = mm1_qbd(0.5, 1.0);
  q.down[0](0, 0) = 1.0;  // down from level 0 is impossible
  EXPECT_THROW(q.validate(), Error);
}

}  // namespace
}  // namespace esched
