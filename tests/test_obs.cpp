// Tests for the observability layer (src/obs): sharded counter and
// histogram correctness under threads, log-bucket boundaries, snapshot
// determinism, trace line integrity — and the layer's core contract,
// proven end to end: instrumentation never changes report bytes or
// numerical results.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace esched {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Counter, MergesShardsAcrossEightThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t n = 0; n < kPerThread; ++n) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.total(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.total(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge gauge;
  gauge.set(3.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.5);
  gauge.add(-1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.25);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(LogHistogram, BucketBoundariesAreExactPowersOfTwo) {
  // Bucket b spans [2^(b + kHistMinExp), 2^(b + kHistMinExp + 1)).
  EXPECT_EQ(histogram_bucket(std::ldexp(1.0, kHistMinExp)), 0u);
  EXPECT_EQ(histogram_bucket(1.0), static_cast<std::size_t>(-kHistMinExp));
  EXPECT_EQ(histogram_bucket(2.0), static_cast<std::size_t>(-kHistMinExp) + 1);
  // A value just below a boundary stays in the lower bucket.
  EXPECT_EQ(histogram_bucket(std::nextafter(2.0, 0.0)),
            static_cast<std::size_t>(-kHistMinExp));
  // Non-positive and non-finite values clamp into bucket 0; huge values
  // clamp into the top bucket.
  EXPECT_EQ(histogram_bucket(0.0), 0u);
  EXPECT_EQ(histogram_bucket(-1.0), 0u);
  EXPECT_EQ(histogram_bucket(std::ldexp(1.0, kHistMinExp) / 4.0), 0u);
  EXPECT_EQ(histogram_bucket(1e300), kHistBuckets - 1);
  // Bounds tile the line: hi(b) == lo(b + 1).
  for (std::size_t b = 0; b + 1 < kHistBuckets; ++b) {
    EXPECT_DOUBLE_EQ(histogram_bucket_hi(b), histogram_bucket_lo(b + 1));
  }
  EXPECT_DOUBLE_EQ(histogram_bucket_lo(0), std::ldexp(1.0, kHistMinExp));
}

TEST(LogHistogram, ConcurrentRecordsMerge) {
  LogHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int n = 0; n < kPerThread; ++n) {
        hist.record(0.5 + t);  // distinct per-thread values
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const LogHistogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 7.5);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (0.5 + t) * kPerThread;
  EXPECT_NEAR(snap.sum, expected_sum, 1e-6);
  std::uint64_t bucketed = 0;
  for (const auto count : snap.buckets) bucketed += count;
  EXPECT_EQ(bucketed, snap.count);
}

TEST(LogHistogram, QuantilesInterpolateAndClamp) {
  LogHistogram hist;
  hist.record(1.0);
  const LogHistogram::Snapshot one = hist.snapshot();
  // A single sample: every quantile collapses to it (clamped to
  // [min, max], so bucket interpolation cannot widen the answer).
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 1.0);

  LogHistogram many;
  for (int n = 1; n <= 1000; ++n) many.record(n * 0.001);  // 1 ms .. 1 s
  const LogHistogram::Snapshot snap = many.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  // Log-bucket resolution is a factor of two, so quantiles are coarse but
  // must be ordered and inside the observed range.
  const double p50 = snap.quantile(0.5);
  const double p90 = snap.quantile(0.9);
  const double p99 = snap.quantile(0.99);
  EXPECT_GE(p50, snap.min);
  EXPECT_LE(p99, snap.max);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(p50, 0.5, 0.5);  // within one bucket of the true median
  const LogHistogram::Snapshot empty = LogHistogram().snapshot();
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(ScopedTimer, RecordsOneSampleAndBumpsCounter) {
  LogHistogram hist;
  Counter count;
  {
    ScopedTimer timer(hist, &count);
    EXPECT_GE(timer.elapsed_seconds(), 0.0);
  }
  const LogHistogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.min, 0.0);
  EXPECT_EQ(count.total(), 1u);
}

TEST(MetricsRegistry, HandlesAreStableAndResetKeepsThemValid) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);  // one metric per name
  a.add(5);
  registry.histogram("x.seconds").record(0.25);
  registry.gauge("x.gauge").set(2.0);
  registry.reset();
  EXPECT_EQ(b.total(), 0u);  // zeroed in place, reference still valid
  b.add(3);
  EXPECT_EQ(registry.counter("x.count").total(), 3u);
  EXPECT_EQ(registry.histogram("x.seconds").snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("x.gauge").value(), 0.0);
}

TEST(MetricsRegistry, SnapshotJsonIsDeterministic) {
  const auto populate = [](MetricsRegistry& registry) {
    // Insertion order deliberately differs from name order.
    registry.histogram("z.seconds").record(0.125);
    registry.counter("b.count").add(7);
    registry.counter("a.count").add(2);
    registry.gauge("m.gauge").set(4.0);
    registry.histogram("z.seconds").record(0.25);
  };
  MetricsRegistry first;
  MetricsRegistry second;
  populate(first);
  populate(second);
  const std::string a = first.snapshot().to_json().dump();
  const std::string b = second.snapshot().to_json().dump();
  EXPECT_EQ(a, b);
  // Sorted by name and carrying the schema version.
  const JsonValue parsed = parse_json(a, "metrics");
  EXPECT_EQ(parsed.find("schema_version")->as_number("v"),
            kMetricsSchemaVersion);
  EXPECT_EQ(parsed.find("counters")->find("a.count")->as_number("a"), 2.0);
  EXPECT_EQ(
      parsed.find("histograms")->find("z.seconds")->find("count")->as_number(
          "c"),
      2.0);
}

TEST(TraceWriter, ConcurrentEventsStayOneValidJsonPerLine) {
  const std::string path = testing::TempDir() + "esched_trace_test.jsonl";
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  {
    TraceWriter writer(path);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&writer, t] {
        for (int n = 0; n < kPerThread; ++n) {
          writer.event("test_event", {{"thread", t},
                                      {"n", n},
                                      {"label", std::string("abc")}});
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const JsonValue event = parse_json(line, "trace");  // throws on a tear
    EXPECT_EQ(event.find("ev")->as_string("ev"), "test_event");
    EXPECT_GE(event.find("t")->as_number("t"), 0.0);
    ASSERT_NE(event.find("thread"), nullptr);
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
  std::remove(path.c_str());
}

/// A small mixed-backend scenario for the end-to-end invariants.
Scenario obs_scenario() {
  Scenario s;
  s.name = "obs";
  s.k_values = {2, 4};
  s.rho_values = {0.5, 0.7};
  s.mu_i_values = {1.0};
  s.mu_e_values = {1.0};
  s.policies = {"IF", "EF"};
  s.solvers = {SolverKind::kQbdAnalysis, SolverKind::kMmkBaseline};
  return s;
}

TEST(Observability, InstrumentationNeverChangesReportBytes) {
  const auto points = obs_scenario().expand();
  // Baseline: no trace sink (metrics are always live — that IS the
  // production configuration the baseline must cover).
  SweepRunner plain(2);
  const auto baseline = plain.run(points);
  const std::string csv_a = testing::TempDir() + "obs_plain.csv";
  write_csv_report(csv_a, points, baseline, /*with_size_dist=*/false);

  // Instrumented: trace sink installed, metrics snapshotted after.
  const std::string trace_path = testing::TempDir() + "obs_run.jsonl";
  {
    TraceWriter writer(trace_path);
    set_global_trace(&writer);
    SweepRunner traced(2);
    const auto results = traced.run(points);
    set_global_trace(nullptr);
    ASSERT_EQ(results.size(), baseline.size());
    for (std::size_t n = 0; n < results.size(); ++n) {
      EXPECT_TRUE(numerically_equal(results[n], baseline[n])) << "row " << n;
    }
    const std::string csv_b = testing::TempDir() + "obs_traced.csv";
    write_csv_report(csv_b, points, results, /*with_size_dist=*/false);
    EXPECT_EQ(read_file(csv_a), read_file(csv_b));
    std::remove(csv_b.c_str());
  }
  // The trace actually recorded the sweep it watched.
  const std::string trace = read_file(trace_path);
  EXPECT_NE(trace.find("\"ev\": \"sweep_start\""), std::string::npos);
  EXPECT_NE(trace.find("\"ev\": \"point_done\""), std::string::npos);
  EXPECT_NE(trace.find("\"ev\": \"sweep_done\""), std::string::npos);
  std::remove(csv_a.c_str());
  std::remove(trace_path.c_str());
}

TEST(Observability, MemoHitsReportZeroSolveSecondsAndHonestStats) {
  const auto points = obs_scenario().expand();
  SweepRunner runner(2);
  SweepStats fresh_stats;
  const auto fresh = runner.run(points, &fresh_stats);
  EXPECT_EQ(fresh_stats.cache_hits, 0u);
  EXPECT_GT(fresh_stats.solve_seconds_total, 0.0);
  for (const auto& result : fresh) EXPECT_FALSE(result.from_cache);

  // Same runner, same points: everything memoized. Cached deliveries
  // must say so — from_cache set, solve_seconds zeroed — so cache
  // effectiveness and ETA math never double-count the original solve.
  SweepStats memo_stats;
  const auto memoized = runner.run(points, &memo_stats);
  EXPECT_EQ(memo_stats.cache_hits, points.size());
  EXPECT_DOUBLE_EQ(memo_stats.solve_seconds_total, 0.0);
  ASSERT_EQ(memoized.size(), fresh.size());
  for (std::size_t n = 0; n < memoized.size(); ++n) {
    EXPECT_TRUE(memoized[n].from_cache) << "row " << n;
    EXPECT_DOUBLE_EQ(memoized[n].solve_seconds, 0.0) << "row " << n;
    EXPECT_TRUE(numerically_equal(memoized[n], fresh[n])) << "row " << n;
  }
}

}  // namespace
}  // namespace esched
