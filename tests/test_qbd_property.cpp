// Property tests for the QBD solver: randomized processes (random phase
// counts, random rates, random boundary depths) solved matrix-analytically
// must agree with brute-force GTH on deep truncations of the same chain.
// This is the hardening test for the paper's §5.3 machinery.
#include <gtest/gtest.h>

#include <vector>

#include "markov/ctmc.hpp"
#include "markov/stationary.hpp"
#include "qbd/qbd.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace esched {
namespace {

struct RandomQbdCase {
  std::uint64_t seed;
  std::size_t phases;
  std::size_t boundary_levels;
};

/// Builds a random stable QBD: dense-ish local/up/down rates with the down
/// rates scaled up to guarantee positive recurrence.
QbdProcess random_qbd(const RandomQbdCase& c) {
  Xoshiro256 rng(c.seed);
  const std::size_t m = c.phases;
  auto random_block = [&](double scale, bool allow_diag) {
    Matrix b(m, m);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t col = 0; col < m; ++col) {
        if (!allow_diag && r == col) continue;
        if (bernoulli(rng, 0.6)) b(r, col) = uniform(rng, 0.05, scale);
      }
    }
    return b;
  };
  QbdProcess p;
  p.num_phases = m;
  p.first_repeating = c.boundary_levels;
  p.rep_up = random_block(0.5, true);
  p.rep_local = random_block(1.0, false);
  // Down rates dominate up rates so the process is stable.
  p.rep_down = random_block(1.0, true);
  for (std::size_t r = 0; r < m; ++r) {
    double up_sum = 0.0;
    double down_sum = 0.0;
    for (std::size_t col = 0; col < m; ++col) {
      up_sum += p.rep_up(r, col);
      down_sum += p.rep_down(r, col);
    }
    // Only ever ADD diagonal mass so all rates stay non-negative.
    const double needed = 2.0 * up_sum + 0.5 - down_sum;
    if (needed > 0.0) p.rep_down(r, r) += needed;
  }
  for (std::size_t l = 0; l < c.boundary_levels; ++l) {
    p.up.push_back(random_block(0.5, true));
    p.local.push_back(random_block(1.0, false));
    if (l == 0) {
      p.down.emplace_back(m, m);
    } else {
      Matrix d = p.rep_down;
      d *= uniform(rng, 0.3, 1.0);  // weaker service near the boundary
      p.down.push_back(std::move(d));
    }
  }
  return p;
}

/// Brute force: unroll `levels` levels into a sparse chain, solve with GTH.
Vector truncated_reference(const QbdProcess& p, std::size_t levels,
                           double* mean_level_out) {
  const std::size_t m = p.num_phases;
  SparseCtmc chain(levels * m);
  const auto idx = [m](std::size_t level, std::size_t phase) {
    return level * m + phase;
  };
  auto up_block = [&](std::size_t l) -> const Matrix& {
    return l < p.first_repeating ? p.up[l] : p.rep_up;
  };
  auto local_block = [&](std::size_t l) -> const Matrix& {
    return l < p.first_repeating ? p.local[l] : p.rep_local;
  };
  auto down_block = [&](std::size_t l) -> const Matrix& {
    return l < p.first_repeating ? p.down[l] : p.rep_down;
  };
  for (std::size_t l = 0; l < levels; ++l) {
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) {
        if (l + 1 < levels && up_block(l)(r, c) > 0.0) {
          chain.add_rate(idx(l, r), idx(l + 1, c), up_block(l)(r, c));
        }
        if (r != c && local_block(l)(r, c) > 0.0) {
          chain.add_rate(idx(l, r), idx(l, c), local_block(l)(r, c));
        }
        if (l >= 1 && down_block(l)(r, c) > 0.0) {
          chain.add_rate(idx(l, r), idx(l - 1, c), down_block(l)(r, c));
        }
      }
    }
  }
  chain.freeze();
  const Vector pi = gth_stationary(chain);
  double mean = 0.0;
  for (std::size_t l = 0; l < levels; ++l) {
    for (std::size_t r = 0; r < m; ++r) {
      mean += static_cast<double>(l) * pi[idx(l, r)];
    }
  }
  if (mean_level_out != nullptr) *mean_level_out = mean;
  return pi;
}

class RandomQbd : public testing::TestWithParam<RandomQbdCase> {};

TEST_P(RandomQbd, MatrixAnalyticAgreesWithGth) {
  const RandomQbdCase& c = GetParam();
  const QbdProcess p = random_qbd(c);
  ASSERT_NO_THROW(p.validate());
  const QbdSolution sol = solve_qbd(p);
  EXPECT_LT(sol.r_residual, 1e-9);
  EXPECT_LT(sol.spectral_radius, 1.0);

  // Deep truncation: the strong down-drift makes 80 levels plenty.
  const std::size_t levels = 80;
  double ref_mean = 0.0;
  const Vector ref = truncated_reference(p, levels, &ref_mean);
  EXPECT_NEAR(sol.mean_level(), ref_mean, 1e-6 * (1.0 + ref_mean));
  for (std::size_t l = 0; l < 6; ++l) {
    double ref_level = 0.0;
    for (std::size_t r = 0; r < p.num_phases; ++r) {
      ref_level += ref[l * p.num_phases + r];
    }
    EXPECT_NEAR(sol.level_probability(l), ref_level, 1e-8)
        << "level " << l;
  }
  // Phase marginal sums to one.
  const Vector marginal = sol.phase_marginal();
  double total = 0.0;
  for (double v : marginal) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedSweep, RandomQbd,
    testing::Values(RandomQbdCase{1, 1, 1}, RandomQbdCase{2, 2, 1},
                    RandomQbdCase{3, 2, 3}, RandomQbdCase{4, 3, 2},
                    RandomQbdCase{5, 4, 1}, RandomQbdCase{6, 4, 4},
                    RandomQbdCase{7, 6, 2}, RandomQbdCase{8, 8, 1},
                    RandomQbdCase{9, 5, 5}, RandomQbdCase{10, 3, 6}));

}  // namespace
}  // namespace esched
