// Tests for the multi-class extension (paper §6): N classes with
// individual parallelizability caps under static priority orders. The
// two-class reduction is validated against the main two-class simulator
// and the QBD analyses.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "core/ef_analysis.hpp"
#include "core/if_analysis.hpp"
#include "multiclass/multiclass.hpp"

namespace esched {
namespace {

MultiClassParams two_class(double rho) {
  // Mirror of SystemParams::from_load(4, mu_i=2, mu_e=1, rho) with the
  // inelastic class as class 0 (cap 1) and fully elastic class 1 (cap k).
  MultiClassParams p;
  p.k = 4;
  const double lambda = rho * 4.0 * 2.0 * 1.0 / (2.0 + 1.0);
  p.classes.push_back({"inelastic", lambda, 2.0, 1.0});
  p.classes.push_back({"elastic", lambda, 1.0, 4.0});
  return p;
}

MultiClassSimOptions fast_opts(std::uint64_t seed = 1) {
  MultiClassSimOptions opt;
  opt.num_jobs = 120000;
  opt.warmup_jobs = 12000;
  opt.seed = seed;
  return opt;
}

TEST(MultiClassParams, LoadAndValidation) {
  MultiClassParams p = two_class(0.7);
  EXPECT_NEAR(p.rho(), 0.7, 1e-12);
  EXPECT_NO_THROW(p.validate());
  p.classes[0].cap = 0.5;
  EXPECT_THROW(p.validate(), Error);
  p.classes[0].cap = 9.0;  // > k
  EXPECT_THROW(p.validate(), Error);
}

TEST(MultiClass, PriorityOrderHelpers) {
  MultiClassParams p;
  p.k = 8;
  p.classes.push_back({"a", 0.1, 1.0, 8.0});  // fully elastic
  p.classes.push_back({"b", 0.1, 4.0, 1.0});  // inelastic, small
  p.classes.push_back({"c", 0.1, 0.5, 4.0});  // partially elastic, large
  const auto lpf = least_parallelizable_first(p);
  EXPECT_EQ(lpf, (std::vector<int>{1, 2, 0}));
  const auto mpf = most_parallelizable_first(p);
  EXPECT_EQ(mpf, (std::vector<int>{0, 2, 1}));
  const auto ssf = smallest_size_first(p);
  EXPECT_EQ(ssf, (std::vector<int>{1, 0, 2}));
}

TEST(MultiClass, RejectsBadOrders) {
  const MultiClassParams p = two_class(0.5);
  EXPECT_THROW(simulate_multiclass(p, {0}, fast_opts()), Error);
  EXPECT_THROW(simulate_multiclass(p, {0, 0}, fast_opts()), Error);
  EXPECT_THROW(simulate_multiclass(p, {0, 5}, fast_opts()), Error);
}

TEST(MultiClass, TwoClassReductionMatchesIfAnalysis) {
  // Priority to the inelastic class == the paper's IF.
  const MultiClassParams p = two_class(0.7);
  const SystemParams sp = SystemParams::from_load(4, 2.0, 1.0, 0.7);
  const double analytic = analyze_inelastic_first(sp).mean_response_time;
  const MultiClassSimResult r =
      simulate_multiclass(p, {0, 1}, fast_opts(11));
  EXPECT_LT(relative_error(r.mean_response_time.mean, analytic), 0.04);
}

TEST(MultiClass, TwoClassReductionMatchesEfAnalysis) {
  // Priority to the elastic class == the paper's EF.
  const MultiClassParams p = two_class(0.7);
  const SystemParams sp = SystemParams::from_load(4, 2.0, 1.0, 0.7);
  const double analytic = analyze_elastic_first(sp).mean_response_time;
  const MultiClassSimResult r =
      simulate_multiclass(p, {1, 0}, fast_opts(12));
  EXPECT_LT(relative_error(r.mean_response_time.mean, analytic), 0.04);
}

TEST(MultiClass, UtilizationMatchesLoad) {
  const MultiClassParams p = two_class(0.6);
  const MultiClassSimResult r =
      simulate_multiclass(p, {0, 1}, fast_opts(13));
  EXPECT_NEAR(r.utilization, 0.6, 0.02);
}

TEST(MultiClass, ThreeClassesStableAndAccounted) {
  MultiClassParams p;
  p.k = 8;
  p.classes.push_back({"query", 2.0, 4.0, 1.0});    // rho 1/16
  p.classes.push_back({"batch", 0.5, 0.25, 8.0});   // rho 1/4
  p.classes.push_back({"medium", 1.0, 1.0, 4.0});   // rho 1/8
  ASSERT_LT(p.rho(), 1.0);
  const MultiClassSimResult r =
      simulate_multiclass(p, least_parallelizable_first(p), fast_opts(14));
  EXPECT_GT(r.mean_response_time.mean, 0.0);
  // All classes complete jobs roughly in proportion to their arrival rates.
  const double total = static_cast<double>(
      r.class_completed[0] + r.class_completed[1] + r.class_completed[2]);
  EXPECT_NEAR(static_cast<double>(r.class_completed[0]) / total,
              2.0 / 3.5, 0.05);
  // Highest-priority small class sees near-service-time response.
  EXPECT_LT(r.class_response_time[0], 2.0 / 4.0);
}

TEST(MultiClass, Theorem5GeneralizationHoldsInSimulation) {
  // Three classes where caps and sizes are aligned (less parallelizable
  // => smaller): least-parallelizable-first should beat the reverse,
  // generalizing IF-optimality.
  MultiClassParams p;
  p.k = 8;
  p.classes.push_back({"tiny-rigid", 4.0, 8.0, 1.0});
  p.classes.push_back({"mid", 1.0, 1.0, 4.0});
  p.classes.push_back({"huge-elastic", 0.2, 0.125, 8.0});
  ASSERT_LT(p.rho(), 1.0);
  const MultiClassSimResult forward = simulate_multiclass(
      p, least_parallelizable_first(p), fast_opts(15));
  const MultiClassSimResult reverse = simulate_multiclass(
      p, most_parallelizable_first(p), fast_opts(15));
  EXPECT_LT(forward.mean_response_time.mean,
            reverse.mean_response_time.mean);
}

TEST(MultiClass, DeterministicGivenSeed) {
  const MultiClassParams p = two_class(0.5);
  MultiClassSimOptions opt = fast_opts(77);
  opt.num_jobs = 20000;
  opt.warmup_jobs = 2000;
  const MultiClassSimResult a = simulate_multiclass(p, {0, 1}, opt);
  const MultiClassSimResult b = simulate_multiclass(p, {0, 1}, opt);
  EXPECT_DOUBLE_EQ(a.mean_response_time.mean, b.mean_response_time.mean);
}

}  // namespace
}  // namespace esched
