// Tests for fleet observability: live telemetry publication and merging
// (src/obs/telemetry), snapshot JSON round-trips and bucket-wise
// histogram merging (src/obs/metrics), multi-worker span-tree
// reconstruction (src/obs/trace_report), and the bench regression gate
// (src/obs/bench_diff). The load-bearing contracts: a torn telemetry
// file reads as absent, merged fleet counters equal the sum of the
// per-worker finals, merged quantiles are re-derived from combined
// buckets (never averaged across processes), and the span merger orders
// interleaved two-process traces deterministically by (t, pid, seq).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/bench_diff.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_report.hpp"

namespace esched {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

// --- snapshot JSON round-trip and merging ---------------------------------

TEST(MetricsSnapshotJson, RoundTripsCountersGaugesAndHistograms) {
  MetricsRegistry registry;
  registry.counter("sweep.points.solved").add(42);
  registry.gauge("queue.depth").set(7.5);
  LogHistogram& hist = registry.histogram("solver.qbd.seconds");
  hist.record(0.5);
  hist.record(1.5);
  hist.record(3.0);
  const MetricsSnapshot snap = registry.snapshot();
  const MetricsSnapshot back =
      metrics_snapshot_from_json(snap.to_json(), "round-trip");
  EXPECT_EQ(back.counter_value("sweep.points.solved"), 42u);
  EXPECT_DOUBLE_EQ(back.gauge_value("queue.depth"), 7.5);
  const LogHistogram::Snapshot* h = back.find_histogram("solver.qbd.seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_DOUBLE_EQ(h->sum, 5.0);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 3.0);
  // Buckets relocated by their exact power-of-two lo bounds: quantiles of
  // the round-tripped snapshot match the original's.
  const LogHistogram::Snapshot* orig =
      snap.find_histogram("solver.qbd.seconds");
  ASSERT_NE(orig, nullptr);
  EXPECT_DOUBLE_EQ(h->quantile(0.5), orig->quantile(0.5));
  EXPECT_DOUBLE_EQ(h->quantile(0.99), orig->quantile(0.99));
}

TEST(MetricsSnapshotJson, RejectsWrongSchemaVersion) {
  JsonValue doc = JsonValue::make_object();
  doc.set("schema_version", JsonValue::make_number(999));
  EXPECT_THROW(metrics_snapshot_from_json(doc, "bad"), Error);
}

TEST(MergeMetricsSnapshots, SumsCountersAndGauges) {
  MetricsRegistry a;
  a.counter("sweep.points.solved").add(10);
  a.gauge("queue.depth").set(2.0);
  MetricsRegistry b;
  b.counter("sweep.points.solved").add(32);
  b.counter("cache.shm.hits").add(5);
  b.gauge("queue.depth").set(3.0);
  const MetricsSnapshot merged =
      merge_metrics_snapshots({a.snapshot(), b.snapshot()});
  EXPECT_EQ(merged.counter_value("sweep.points.solved"), 42u);
  EXPECT_EQ(merged.counter_value("cache.shm.hits"), 5u);
  EXPECT_DOUBLE_EQ(merged.gauge_value("queue.depth"), 5.0);
}

TEST(MergeMetricsSnapshots, RederivesQuantilesFromCombinedBuckets) {
  // Process A solves only fast points, process B only slow ones. The
  // fleet p50 must come from the COMBINED distribution (~the boundary of
  // the two populations) — averaging the per-process p50s would also land
  // mid-way here, but the p99 separates the approaches: the true combined
  // p99 sits in B's slow bucket, while an average of per-process p99s
  // ((0.004 + 4.0) / 2 ~= 2.0) lands in the empty middle of the
  // distribution where no sample exists.
  MetricsRegistry a;
  MetricsRegistry b;
  for (int n = 0; n < 100; ++n) a.histogram("sweep.point.seconds").record(0.004);
  for (int n = 0; n < 100; ++n) b.histogram("sweep.point.seconds").record(4.0);
  const MetricsSnapshot merged =
      merge_metrics_snapshots({a.snapshot(), b.snapshot()});
  const LogHistogram::Snapshot* h =
      merged.find_histogram("sweep.point.seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 200u);
  EXPECT_DOUBLE_EQ(h->min, 0.004);
  EXPECT_DOUBLE_EQ(h->max, 4.0);
  const double p99 = h->quantile(0.99);
  EXPECT_GE(p99, 2.0);  // in the slow population's bucket
  EXPECT_LE(p99, 4.0);
  // And the histogram sum/count give the true fleet mean.
  EXPECT_NEAR(h->mean(), (100 * 0.004 + 100 * 4.0) / 200.0, 1e-12);
}

TEST(MergeMetricsSnapshots, SingleBucketAndEmptyHistograms) {
  // Empty histograms contribute nothing; a single-bucket distribution's
  // quantiles stay clamped to [min, max] after merging.
  MetricsRegistry a;
  MetricsRegistry b;
  a.histogram("solver.qbd.seconds");  // registered, never recorded
  for (int n = 0; n < 7; ++n) b.histogram("solver.qbd.seconds").record(1.25);
  const MetricsSnapshot merged =
      merge_metrics_snapshots({a.snapshot(), b.snapshot()});
  const LogHistogram::Snapshot* h = merged.find_histogram("solver.qbd.seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 7u);
  EXPECT_DOUBLE_EQ(h->quantile(0.5), 1.25);
  EXPECT_DOUBLE_EQ(h->quantile(0.99), 1.25);
  EXPECT_DOUBLE_EQ(h->quantile(0.0), 1.25);

  // Merging only empties yields an empty histogram whose quantiles are 0.
  const MetricsSnapshot empty = merge_metrics_snapshots({a.snapshot()});
  const LogHistogram::Snapshot* e = empty.find_histogram("solver.qbd.seconds");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 0u);
  EXPECT_DOUBLE_EQ(e->quantile(0.5), 0.0);
}

// --- telemetry publication and fleet reads --------------------------------

TEST(Telemetry, FileStemSanitizesOwner) {
  EXPECT_EQ(telemetry_file_stem("host-1.worker_2"), "host-1.worker_2");
  EXPECT_EQ(telemetry_file_stem("a/b c"), "a_b_c");
  EXPECT_EQ(telemetry_file_stem(""), "worker");
}

TEST(Telemetry, PublisherWritesImmediateAndFinalSnapshots) {
  const std::string dir = fresh_dir("esched_telemetry_pub");
  MetricsRegistry registry;
  registry.counter("sweep.points.solved").add(5);
  std::string path;
  {
    TelemetryOptions options;
    options.dir = dir;
    options.owner = "unit.1";
    options.interval_seconds = 3600.0;  // only the ctor + dtor snapshots
    options.registry = &registry;
    TelemetryPublisher publisher(options);
    path = publisher.path();
    // The constructor published synchronously: the fleet sees the worker
    // the moment it starts, final=false.
    const FleetSnapshot live = read_fleet_telemetry(dir);
    ASSERT_EQ(live.workers.size(), 1u);
    EXPECT_EQ(live.workers[0].owner, "unit.1");
    EXPECT_FALSE(live.workers[0].final_snapshot);
    EXPECT_EQ(live.workers[0].metrics.counter_value("sweep.points.solved"),
              5u);
    registry.counter("sweep.points.solved").add(2);
  }
  // The destructor published a final snapshot with the post-increment
  // counter value.
  const FleetSnapshot done = read_fleet_telemetry(dir);
  ASSERT_EQ(done.workers.size(), 1u);
  EXPECT_TRUE(done.workers[0].final_snapshot);
  EXPECT_GE(done.workers[0].uptime_seconds, 0.0);
  EXPECT_EQ(done.workers[0].metrics.counter_value("sweep.points.solved"), 7u);
  EXPECT_GT(done.workers[0].pid, 0);  // this process's pid round-tripped
  EXPECT_EQ(fs::path(path).filename().string(), "unit.1.metrics.json");
}

TEST(Telemetry, PublisherTicksOnItsInterval) {
  const std::string dir = fresh_dir("esched_telemetry_tick");
  MetricsRegistry registry;
  TelemetryOptions options;
  options.dir = dir;
  options.owner = "ticker";
  options.interval_seconds = 0.05;
  options.registry = &registry;
  TelemetryPublisher publisher(options);
  registry.counter("telemetry.test.ticks").add(9);
  // Within ~2 s a 50 ms interval must republish the bumped counter; poll
  // instead of sleeping a fixed amount so the test is fast when the tick
  // is prompt and robust when the machine is loaded.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::uint64_t seen = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const FleetSnapshot fleet = read_fleet_telemetry(dir);
    if (!fleet.workers.empty()) {
      seen = fleet.workers[0].metrics.counter_value("telemetry.test.ticks");
      if (seen == 9) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(seen, 9u);
}

TEST(Telemetry, TornAndForeignFilesReadAsAbsent) {
  // A worker SIGKILLed mid-write can leave (a) a '.tmp.' orphan from
  // atomic_write_file and (b) — on a filesystem without atomic rename
  // semantics this codebase does not target, or from a foreign writer — a
  // truncated document. Both must read as absent, never throw.
  const std::string dir = fresh_dir("esched_telemetry_torn");
  write_file(dir + "/alive.metrics.json",
             "{\"telemetry_schema_version\":1,\"owner\":\"alive\",\"pid\":1,"
             "\"final\":false,\"uptime_seconds\":1.0,\"metrics\":"
             "{\"schema_version\":1,\"counters\":{\"sweep.points.solved\":3},"
             "\"gauges\":{},\"histograms\":{}}}\n");
  write_file(dir + "/torn.metrics.json",
             "{\"telemetry_schema_version\":1,\"owner\":\"torn\",\"met");
  write_file(dir + "/.tmp.1234.worker.metrics.json", "half-written");
  write_file(dir + "/README.txt", "not telemetry");
  write_file(dir + "/skewed.metrics.json",
             "{\"telemetry_schema_version\":999}");
  const FleetSnapshot fleet = read_fleet_telemetry(dir);
  ASSERT_EQ(fleet.workers.size(), 1u);
  EXPECT_EQ(fleet.workers[0].owner, "alive");
  // torn + skewed counted; '.tmp.' and foreign files are silently ignored
  // (orphan sweeping is the queue's job, and README.txt is not ours).
  EXPECT_EQ(fleet.skipped_files, 2u);
  EXPECT_EQ(fleet.merged.counter_value("sweep.points.solved"), 3u);
}

TEST(Telemetry, MissingDirectoryYieldsEmptyFleet) {
  const FleetSnapshot fleet =
      read_fleet_telemetry(testing::TempDir() + "esched_no_such_dir_xyz");
  EXPECT_TRUE(fleet.workers.empty());
  EXPECT_EQ(fleet.skipped_files, 0u);
  EXPECT_TRUE(fleet.merged.counters.empty());
}

TEST(Telemetry, ThreeWorkerMergeEqualsSumOfFinals) {
  const std::string dir = fresh_dir("esched_telemetry_fleet3");
  std::uint64_t expected_points = 0;
  double expected_hist_sum = 0.0;
  for (int w = 0; w < 3; ++w) {
    MetricsRegistry registry;
    const std::uint64_t points = 10 + static_cast<std::uint64_t>(w) * 7;
    registry.counter("sweep.points.solved").add(points);
    expected_points += points;
    for (int n = 0; n <= w; ++n) {
      const double seconds = 0.25 * (w + 1);
      registry.histogram("solver.qbd.seconds").record(seconds);
      expected_hist_sum += seconds;
    }
    TelemetryOptions options;
    options.dir = dir;
    options.owner = "w" + std::to_string(w);
    options.interval_seconds = 3600.0;
    options.registry = &registry;
    TelemetryPublisher publisher(options);
    publisher.publish(/*final_snapshot=*/true);
  }
  const FleetSnapshot fleet = read_fleet_telemetry(dir);
  ASSERT_EQ(fleet.workers.size(), 3u);
  // Sorted by owner for stable frames.
  EXPECT_EQ(fleet.workers[0].owner, "w0");
  EXPECT_EQ(fleet.workers[2].owner, "w2");
  EXPECT_EQ(fleet.merged.counter_value("sweep.points.solved"),
            expected_points);
  const LogHistogram::Snapshot* h =
      fleet.merged.find_histogram("solver.qbd.seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 6u);  // 1 + 2 + 3 samples
  EXPECT_NEAR(h->sum, expected_hist_sum, 1e-12);
  EXPECT_DOUBLE_EQ(h->min, 0.25);
  EXPECT_DOUBLE_EQ(h->max, 0.75);
}

// --- span-structured tracing and the report merger ------------------------

TEST(TraceSpans, EventsCarryPidSeqAndSpanFields) {
  const std::string path = testing::TempDir() + "esched_span_events.jsonl";
  {
    TraceWriter writer(path);
    set_global_trace(&writer);
    {
      const TraceSpan outer("sweep", {{"points", std::size_t{4}}});
      ASSERT_NE(outer.id(), 0u);
      const TraceSpan inner("point", {{"index", std::size_t{0}}});
      ASSERT_NE(inner.id(), 0u);
      EXPECT_NE(inner.id(), outer.id());
    }
    set_global_trace(nullptr);
  }
  std::ifstream in(path);
  std::string line;
  std::vector<JsonValue> events;
  while (std::getline(in, line)) {
    if (!line.empty()) events.push_back(parse_json(line, path));
  }
  ASSERT_EQ(events.size(), 4u);  // begin sweep, begin point, end, end
  std::uint64_t last_seq = 0;
  for (std::size_t n = 0; n < events.size(); ++n) {
    ASSERT_NE(events[n].find("pid"), nullptr);
    ASSERT_NE(events[n].find("seq"), nullptr);
    const std::uint64_t seq =
        static_cast<std::uint64_t>(events[n].find("seq")->as_number("seq"));
    if (n > 0) {
      EXPECT_GT(seq, last_seq);  // per-process monotonic
    }
    last_seq = seq;
  }
  // The inner span auto-parents under the outer via the thread stack.
  EXPECT_EQ(events[1].find("parent")->as_number("parent"),
            events[0].find("span")->as_number("span"));
  // LIFO close order: the inner span ends first.
  EXPECT_EQ(events[2].find("span")->as_number("span"),
            events[1].find("span")->as_number("span"));
}

TEST(TraceReport, ReconstructsSpanTreesFromInterleavedTwoProcessTrace) {
  // Hand-written two-worker fixture with interleaved timestamps and
  // colliding span ids (both processes use ids 1..3 — scoping by pid is
  // what keeps them apart). Worker A: worker(1) > chunk(2) > point(3);
  // worker B: worker(1) > chunk(2), with chunk 2 left UNCLOSED as if B
  // was SIGKILLed, plus one torn trailing line.
  const std::string dir = fresh_dir("esched_trace_report");
  const std::string a = dir + "/a.jsonl";
  const std::string b = dir + "/b.jsonl";
  write_file(
      a,
      "{\"t\":0.0,\"ev\":\"span_begin\",\"pid\":100,\"seq\":0,\"span\":1,"
      "\"parent\":0,\"name\":\"worker\",\"owner\":\"a\"}\n"
      "{\"t\":0.1,\"ev\":\"span_begin\",\"pid\":100,\"seq\":1,\"span\":2,"
      "\"parent\":1,\"name\":\"chunk\",\"chunk\":0}\n"
      "{\"t\":0.2,\"ev\":\"span_begin\",\"pid\":100,\"seq\":2,\"span\":3,"
      "\"parent\":2,\"name\":\"point\",\"index\":7,\"solver\":\"qbd\"}\n"
      "{\"t\":0.6,\"ev\":\"span_end\",\"pid\":100,\"seq\":3,\"span\":3,"
      "\"name\":\"point\"}\n"
      "{\"t\":0.7,\"ev\":\"span_end\",\"pid\":100,\"seq\":4,\"span\":2,"
      "\"name\":\"chunk\"}\n"
      "{\"t\":0.8,\"ev\":\"span_end\",\"pid\":100,\"seq\":5,\"span\":1,"
      "\"name\":\"worker\"}\n");
  write_file(
      b,
      "{\"t\":0.05,\"ev\":\"span_begin\",\"pid\":200,\"seq\":0,\"span\":1,"
      "\"parent\":0,\"name\":\"worker\",\"owner\":\"b\"}\n"
      "{\"t\":0.15,\"ev\":\"span_begin\",\"pid\":200,\"seq\":1,\"span\":2,"
      "\"parent\":1,\"name\":\"chunk\",\"chunk\":1}\n"
      "{\"t\":0.55,\"ev\":\"span_end\",\"pid\":200,\"seq\":2,\"span\":1,"
      "\"name\":\"worker\"}\n"
      "{\"t\":0.6,\"ev\":\"span_beg");  // torn final line
  const TraceForest forest = build_trace_forest({a, b});
  EXPECT_EQ(forest.malformed_lines, 1u);
  EXPECT_EQ(forest.unclosed_spans, 1u);  // B's chunk
  ASSERT_EQ(forest.spans.size(), 5u);
  ASSERT_EQ(forest.roots.size(), 2u);

  // Deterministic (t, pid, seq) merge order: A.worker(0.0), B.worker
  // (0.05), A.chunk(0.1), B.chunk(0.15), A.point(0.2).
  EXPECT_EQ(forest.spans[0].name, "worker");
  EXPECT_EQ(forest.spans[0].pid, 100);
  EXPECT_EQ(forest.spans[1].name, "worker");
  EXPECT_EQ(forest.spans[1].pid, 200);
  EXPECT_EQ(forest.spans[2].name, "chunk");
  EXPECT_EQ(forest.spans[2].pid, 100);
  EXPECT_EQ(forest.spans[3].name, "chunk");
  EXPECT_EQ(forest.spans[3].pid, 200);
  EXPECT_EQ(forest.spans[4].name, "point");
  EXPECT_EQ(forest.spans[4].pid, 100);

  // Tree edges resolve within each process despite the id collisions.
  EXPECT_EQ(forest.spans[2].parent, 0u);  // A.chunk under A.worker
  EXPECT_EQ(forest.spans[3].parent, 1u);  // B.chunk under B.worker
  EXPECT_EQ(forest.spans[4].parent, 2u);  // A.point under A.chunk
  const std::vector<std::string> path4 = forest.path(4);
  ASSERT_EQ(path4.size(), 3u);
  EXPECT_EQ(path4[0], "worker");
  EXPECT_EQ(path4[1], "chunk");
  EXPECT_EQ(path4[2], "point");

  // Durations: A.point 0.4 s; B's unclosed chunk extends to its file's
  // last event time (0.55).
  EXPECT_NEAR(forest.spans[4].duration(), 0.4, 1e-12);
  EXPECT_FALSE(forest.spans[3].closed);
  EXPECT_NEAR(forest.spans[3].duration(), 0.4, 1e-12);
  // Self time excludes children: A.chunk total 0.6, minus point 0.4.
  EXPECT_NEAR(forest.self_seconds(2), 0.2, 1e-9);

  // Golden text report (deterministic: merge order, sorted phases).
  std::ostringstream text;
  print_trace_report(forest, text, 5);
  EXPECT_NE(text.str().find("2 files, 9 events, 5 spans"), std::string::npos);
  EXPECT_NE(text.str().find("(1 unclosed, 1 malformed lines)"),
            std::string::npos);
  EXPECT_NE(text.str().find("slowest point spans:"), std::string::npos);
  EXPECT_NE(text.str().find("index=7 solver=qbd"), std::string::npos);

  // Folded stacks: lexicographically sorted, self time in microseconds.
  std::ostringstream folded;
  print_trace_folded(forest, folded);
  const std::string expected =
      "worker 300000\n"            // A self 0.2 + B self 0.1
      "worker;chunk 600000\n"      // A self 0.2 + B self 0.4
      "worker;chunk;point 400000\n";
  EXPECT_EQ(folded.str(), expected);
}

TEST(TraceReport, SortsEqualTimestampsByPidThenSeq) {
  const std::string dir = fresh_dir("esched_trace_order");
  const std::string path = dir + "/t.jsonl";
  // Same t everywhere; order must come from (pid, seq) alone. Written
  // shuffled on purpose.
  write_file(
      path,
      "{\"t\":1.0,\"ev\":\"span_begin\",\"pid\":2,\"seq\":1,\"span\":2,"
      "\"parent\":1,\"name\":\"y\"}\n"
      "{\"t\":1.0,\"ev\":\"span_begin\",\"pid\":1,\"seq\":0,\"span\":1,"
      "\"parent\":0,\"name\":\"x\"}\n"
      "{\"t\":1.0,\"ev\":\"span_begin\",\"pid\":2,\"seq\":0,\"span\":1,"
      "\"parent\":0,\"name\":\"x\"}\n");
  const TraceForest forest = build_trace_forest({path});
  ASSERT_EQ(forest.spans.size(), 3u);
  EXPECT_EQ(forest.spans[0].pid, 1);
  EXPECT_EQ(forest.spans[1].pid, 2);
  EXPECT_EQ(forest.spans[1].id, 1u);   // pid 2's seq 0 before its seq 1
  EXPECT_EQ(forest.spans[2].id, 2u);
  // pid 2's span 2 parents under pid 2's span 1, begun earlier in merge
  // order, despite pid 1 owning an identical id.
  EXPECT_EQ(forest.spans[2].parent, 1u);
}

// --- bench diff and the regression gate -----------------------------------

std::string bench_snapshot_json(
    const std::vector<std::pair<std::string, double>>& cases) {
  JsonValue root = JsonValue::make_object();
  root.set("format", JsonValue::make_string(kBenchFormat));
  root.set("schema_version",
           JsonValue::make_number(static_cast<double>(kBenchSchemaVersion)));
  root.set("mode", JsonValue::make_string("smoke"));
  JsonValue host = JsonValue::make_object();
  host.set("hostname", JsonValue::make_string("test"));
  host.set("compiler", JsonValue::make_string("test"));
  root.set("host", std::move(host));
  JsonValue benchmarks = JsonValue::make_array();
  for (const auto& [name, seconds] : cases) {
    JsonValue entry = JsonValue::make_object();
    entry.set("name", JsonValue::make_string(name));
    entry.set("iterations", JsonValue::make_number(3));
    entry.set("mean_seconds", JsonValue::make_number(seconds));
    entry.set("min_seconds", JsonValue::make_number(seconds));
    entry.set("max_seconds", JsonValue::make_number(seconds));
    entry.set("p50_seconds", JsonValue::make_number(seconds));
    entry.set("p90_seconds", JsonValue::make_number(seconds));
    entry.set("p99_seconds", JsonValue::make_number(seconds));
    benchmarks.push_back(std::move(entry));
  }
  root.set("benchmarks", std::move(benchmarks));
  return root.dump() + "\n";
}

TEST(BenchDiff, LoadRejectsMalformedSnapshots) {
  const std::string dir = fresh_dir("esched_bench_load");
  EXPECT_THROW(load_bench_snapshot(dir + "/missing.json"), Error);
  write_file(dir + "/wrong.json", "{\"format\":\"other\"}");
  EXPECT_THROW(load_bench_snapshot(dir + "/wrong.json"), Error);
  // Non-monotone percentiles are a corrupted snapshot, not a slow case.
  write_file(dir + "/mono.json",
             "{\"format\":\"esched-bench\",\"schema_version\":1,"
             "\"mode\":\"smoke\",\"host\":{\"hostname\":\"h\","
             "\"compiler\":\"c\"},\"benchmarks\":[{\"name\":\"x\","
             "\"iterations\":1,\"mean_seconds\":1.0,\"min_seconds\":2.0,"
             "\"p50_seconds\":1.0,\"p90_seconds\":1.0,\"p99_seconds\":1.0,"
             "\"max_seconds\":1.0}]}");
  EXPECT_THROW(load_bench_snapshot(dir + "/mono.json"), Error);
}

TEST(BenchDiff, FlagsInjectedRegressionAndHonorsThreshold) {
  const std::string dir = fresh_dir("esched_bench_diff");
  write_file(dir + "/old.json", bench_snapshot_json({{"solve/a", 1.0},
                                                     {"solve/b", 1.0},
                                                     {"gone", 1.0}}));
  write_file(dir + "/new.json", bench_snapshot_json({{"solve/a", 1.10},
                                                     {"solve/b", 2.0},
                                                     {"fresh", 1.0}}));
  const BenchSnapshot old_snapshot = load_bench_snapshot(dir + "/old.json");
  const BenchSnapshot new_snapshot = load_bench_snapshot(dir + "/new.json");

  // +10% and +100%: at the default 25% threshold only b regresses.
  const BenchDiffResult diff =
      diff_bench_snapshots(old_snapshot, new_snapshot, 0.25);
  ASSERT_EQ(diff.cases.size(), 2u);
  EXPECT_EQ(diff.regressions, 1u);
  EXPECT_FALSE(diff.cases[0].regressed);  // solve/a, +10%
  EXPECT_TRUE(diff.cases[1].regressed);   // solve/b, +100%
  EXPECT_NEAR(diff.cases[1].mean_ratio, 2.0, 1e-12);
  ASSERT_EQ(diff.only_old.size(), 1u);
  EXPECT_EQ(diff.only_old[0], "gone");
  ASSERT_EQ(diff.only_new.size(), 1u);
  EXPECT_EQ(diff.only_new[0], "fresh");

  // Tighten the threshold to 5% and the +10% case regresses too; loosen
  // to 150% and nothing does. Appeared/disappeared cases never gate.
  EXPECT_EQ(diff_bench_snapshots(old_snapshot, new_snapshot, 0.05)
                .regressions,
            2u);
  EXPECT_EQ(diff_bench_snapshots(old_snapshot, new_snapshot, 1.5).regressions,
            0u);

  // The printed report names the regression.
  std::ostringstream out;
  print_bench_diff(diff, out);
  EXPECT_NE(out.str().find("REGRESSED"), std::string::npos);
  EXPECT_NE(out.str().find("solve/b"), std::string::npos);
}

TEST(BenchDiff, IdenticalSnapshotsNeverRegress) {
  const std::string dir = fresh_dir("esched_bench_same");
  write_file(dir + "/snap.json", bench_snapshot_json({{"solve/a", 0.5}}));
  const BenchSnapshot snapshot = load_bench_snapshot(dir + "/snap.json");
  // Threshold 0: even equality must pass (ratio 1.0 is not > 1.0).
  const BenchDiffResult diff = diff_bench_snapshots(snapshot, snapshot, 0.0);
  EXPECT_EQ(diff.regressions, 0u);
}

}  // namespace
}  // namespace esched
