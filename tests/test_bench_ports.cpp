// Golden-output tests for the bench ports: every harness that moved onto
// the sweep engine must render byte-identical output to its pre-port
// hand-rolled loop. Each test replays the original bench body (direct
// solver calls + the original printf/Table formatting) at a reduced scale
// and compares it against the engine + report-view pipeline character for
// character. This extends the fig4/fig6 golden approach of PR 1 to all
// nine figure/study harnesses.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/numeric.hpp"
#include "common/table.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/coupled.hpp"
#include "sim/trace.hpp"
#include "stats/accumulator.hpp"
#include "stats/histogram.hpp"

namespace esched {
namespace {

/// snprintf into a std::string (the pre-port benches printed via printf).
template <typename... Args>
std::string strprintf(const char* fmt, Args... args) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}

std::string render_view(const std::string& view, const Scenario& scenario,
                        const ViewOptions& options = {}) {
  const auto points = scenario.expand();
  SweepRunner runner(2);
  SweepStats stats;
  const auto results = runner.run(points, &stats);
  std::ostringstream out;
  print_view(view, out, scenario, points, results, stats, options);
  return out.str();
}

TEST(BenchPorts, VsMuViewMatchesHandRolledFig5Loop) {
  Scenario s;
  s.name = "fig5-small";
  s.k_values = {4};
  s.rho_values = {0.5, 0.7};
  s.mu_i_values = {0.5, 1.0, 2.0};
  s.mu_e_values = {1.0};
  s.policies = {"IF", "EF"};
  s.solvers = {SolverKind::kQbdAnalysis};

  // Pre-port bench body (bench/fig5_response_time.cpp before the port).
  std::ostringstream expected;
  for (const double rho : s.rho_values) {
    Table table({"mu_I", "E[T] IF", "E[T] EF", "winner"});
    for (const double mu_i : s.mu_i_values) {
      const SystemParams p = SystemParams::from_load(4, mu_i, 1.0, rho);
      const double et_if = analyze_inelastic_first(p).mean_response_time;
      const double et_ef = analyze_elastic_first(p).mean_response_time;
      table.add_row({format_double(mu_i), format_double(et_if),
                     format_double(et_ef), et_if <= et_ef ? "IF" : "EF"});
    }
    expected << strprintf("\n--- rho = %.1f%s ---\n", rho,
                          " (note under test)");
    table.print(expected);
  }

  ViewOptions options;
  options.rho_note = " (note under test)";
  EXPECT_EQ(render_view("vs-mu", s, options), expected.str());
}

TEST(BenchPorts, HeatmapViewMatchesHandRolledFig4Loop) {
  Scenario s;
  s.name = "fig4-small";
  s.k_values = {4};
  s.rho_values = {0.7};
  s.mu_i_values = {0.5, 1.0, 2.0};
  s.mu_e_values = {0.5, 1.0, 2.0};
  s.policies = {"IF", "EF"};
  s.solvers = {SolverKind::kQbdAnalysis};

  // Pre-port bench body (bench/fig4_heatmap.cpp before the port).
  std::ostringstream expected;
  const auto& grid = s.mu_i_values;
  for (const double rho : s.rho_values) {
    expected << strprintf(
        "\nFigure 4: rho = %.1f, k = %d (rows mu_E top-down, cols mu_I "
        "left-right; I = IF wins, E = EF wins)\n",
        rho, 4);
    expected << strprintf("%7s", "mu_E\\I");
    for (const double mu_i : grid) expected << strprintf("%5.2f", mu_i);
    expected << "\n";
    int if_wins = 0;
    int ef_wins = 0;
    int if_wins_upper = 0;
    int points_upper = 0;
    for (std::size_t b = grid.size(); b-- > 0;) {
      const double mu_e = grid[b];
      expected << strprintf("%6.2f ", mu_e);
      for (std::size_t a = 0; a < grid.size(); ++a) {
        const double mu_i = grid[a];
        const SystemParams p = SystemParams::from_load(4, mu_i, mu_e, rho);
        const double et_if = analyze_inelastic_first(p).mean_response_time;
        const double et_ef = analyze_elastic_first(p).mean_response_time;
        const bool if_better = et_if <= et_ef;
        (if_better ? if_wins : ef_wins)++;
        if (mu_i >= mu_e - 1e-9) {
          ++points_upper;
          if (if_better) ++if_wins_upper;
        }
        expected << strprintf("%5c", if_better ? 'I' : 'E');
      }
      expected << "\n";
    }
    expected << strprintf(
        "summary: IF wins %d points, EF wins %d points; "
        "IF wins %d/%d points with mu_I >= mu_E (paper: all)\n",
        if_wins, ef_wins, if_wins_upper, points_upper);
  }

  ViewOptions options;
  options.title_prefix = "Figure 4: ";
  EXPECT_EQ(render_view("heatmap", s, options), expected.str());
}

TEST(BenchPorts, VsKViewMatchesHandRolledFig6Loop) {
  Scenario s;
  s.name = "fig6-small";
  s.k_values = {2, 3, 4};
  s.rho_values = {0.8};
  s.mu_i_values = {0.5, 2.0};
  s.mu_e_values = {1.0};
  s.policies = {"IF", "EF"};
  s.solvers = {SolverKind::kQbdAnalysis};

  // Pre-port bench body (bench/fig6_vs_k.cpp before the port).
  const char* labels[] = {"panel a", "panel b"};
  std::ostringstream expected;
  for (std::size_t panel = 0; panel < s.mu_i_values.size(); ++panel) {
    Table table({"k", "E[T] IF", "E[T] EF", "gap EF-IF"});
    for (const int k : s.k_values) {
      const SystemParams p =
          SystemParams::from_load(k, s.mu_i_values[panel], 1.0, 0.8);
      const double et_if = analyze_inelastic_first(p).mean_response_time;
      const double et_ef = analyze_elastic_first(p).mean_response_time;
      table.add_row({std::to_string(k), format_double(et_if),
                     format_double(et_ef), format_double(et_ef - et_if)});
    }
    expected << strprintf("\n--- %s ---\n", labels[panel]);
    table.print(expected);
  }

  ViewOptions options;
  options.panel_labels = {"panel a", "panel b"};
  EXPECT_EQ(render_view("vs-k", s, options), expected.str());
}

TEST(BenchPorts, FamilyViewMatchesHandRolledOptimalityLoop) {
  Scenario s;
  s.name = "optimality-small";
  s.cases = {{4, 2.0, 1.0, 0.5, 0}, {4, 0.25, 1.0, 0.6, 0}};
  s.policies = {"IF", "EF", "FairShare", "Cap2", "IF+idle1"};
  s.solvers = {SolverKind::kExactCtmc};
  s.options.imax = s.options.jmax = 20;  // small truncation for speed

  // Pre-port bench body (bench/optimality_sweep.cpp before the port).
  std::ostringstream expected;
  Table table({"mu_I", "mu_E", "rho", "E[T] IF", "E[T] EF", "E[T] Fair",
               "E[T] Cap2", "E[T] IF+idle", "best", "IF optimal?"});
  std::vector<std::pair<PolicyPtr, const char*>> family;
  family.emplace_back(make_inelastic_first(), "IF");
  family.emplace_back(make_elastic_first(), "EF");
  family.emplace_back(make_fair_share(), "FairShare");
  family.emplace_back(make_inelastic_cap(2), "Cap2");
  family.emplace_back(make_idling(make_inelastic_first(), 1.0), "IF+idle");
  int theorem5_checks = 0;
  int theorem5_holds = 0;
  for (const CaseSpec& setting : s.cases) {
    const SystemParams p =
        SystemParams::from_load(setting.k, setting.mu_i, setting.mu_e,
                                setting.rho);
    ExactCtmcOptions opt;
    opt.imax = opt.jmax = 20;
    std::vector<double> et;
    for (const auto& [policy, name] : family) {
      et.push_back(solve_exact_ctmc(p, *policy, opt).mean_response_time);
    }
    std::size_t best = 0;
    for (std::size_t n = 1; n < et.size(); ++n) {
      if (et[n] < et[best]) best = n;
    }
    const bool diagonal_or_above = setting.mu_i >= setting.mu_e;
    const bool if_optimal = et[0] <= et[best] * (1.0 + 1e-9);
    if (diagonal_or_above) {
      ++theorem5_checks;
      if (if_optimal) ++theorem5_holds;
    }
    table.add_row({format_double(setting.mu_i), format_double(setting.mu_e),
                   format_double(setting.rho), format_double(et[0]),
                   format_double(et[1]), format_double(et[2]),
                   format_double(et[3]), format_double(et[4]),
                   family[best].second, if_optimal ? "yes" : "no"});
  }
  table.print(expected);
  expected << strprintf(
      "\nTheorem 5 (mu_I >= mu_E => IF optimal in family): %d/%d "
      "settings hold.\n",
      theorem5_holds, theorem5_checks);

  ViewOptions options;
  options.policy_labels = {"IF", "EF", "FairShare", "Cap2", "IF+idle"};
  options.column_labels = {"IF", "EF", "Fair", "Cap2", "IF+idle"};
  EXPECT_EQ(render_view("family", s, options), expected.str());
}

TEST(BenchPorts, AccuracyViewMatchesHandRolledLoop) {
  Scenario s;
  s.name = "accuracy-small";
  s.cases = {{4, 1.0, 1.0, 0.5, 0}, {2, 2.0, 1.0, 0.6, 0}};
  s.policies = {"IF", "EF"};
  s.solvers = {SolverKind::kQbdAnalysis, SolverKind::kExactCtmc,
               SolverKind::kSimulation};
  s.options.truncation_epsilon = 1e-9;
  s.options.sim_jobs = 3000;
  s.options.sim_warmup = 300;
  s.options.base_seed = 99;
  s.options.sim_raw_seed = true;

  // Pre-port bench body (bench/analysis_accuracy.cpp before the port).
  std::ostringstream expected;
  Table table({"k", "mu_I", "mu_E", "rho", "policy", "QBD E[T]",
               "exact E[T]", "sim E[T]", "err vs exact", "err vs sim"});
  double worst_exact_err = 0.0;
  for (const CaseSpec& setting : s.cases) {
    const SystemParams p = SystemParams::from_load(
        setting.k, setting.mu_i, setting.mu_e, setting.rho);
    ExactCtmcOptions opt;
    opt.imax = opt.jmax = suggested_truncation(p.rho(), 1e-9);
    SimOptions sopt;
    sopt.num_jobs = 3000;
    sopt.warmup_jobs = 300;
    sopt.seed = 99;
    const struct {
      const char* name;
      double qbd;
      double exact;
      double sim;
    } rows[] = {
        {"IF", analyze_inelastic_first(p).mean_response_time,
         solve_exact_ctmc(p, InelasticFirst{}, opt).mean_response_time,
         simulate(p, InelasticFirst{}, sopt).mean_response_time.mean},
        {"EF", analyze_elastic_first(p).mean_response_time,
         solve_exact_ctmc(p, ElasticFirst{}, opt).mean_response_time,
         simulate(p, ElasticFirst{}, sopt).mean_response_time.mean},
    };
    for (const auto& row : rows) {
      const double err_exact = relative_error(row.qbd, row.exact);
      const double err_sim = relative_error(row.qbd, row.sim);
      worst_exact_err = std::max(worst_exact_err, err_exact);
      table.add_row({std::to_string(setting.k), format_double(setting.mu_i),
                     format_double(setting.mu_e), format_double(setting.rho),
                     row.name, format_double(row.qbd),
                     format_double(row.exact), format_double(row.sim),
                     format_double(100.0 * err_exact, 3) + "%",
                     format_double(100.0 * err_sim, 3) + "%"});
    }
  }
  table.print(expected);
  expected << strprintf(
      "\nworst QBD-vs-exact error: %.3f%% (paper: <1%%; errors vs "
      "simulation include Monte Carlo noise)\n",
      100.0 * worst_exact_err);

  EXPECT_EQ(render_view("accuracy", s), expected.str());
}

TEST(BenchPorts, TailViewMatchesHandRolledLoop) {
  Scenario s;
  s.name = "tail-small";
  s.cases = {{4, 2.0, 1.0, 0.6, 0}};
  s.policies = {"IF", "EF"};
  s.solvers = {SolverKind::kSimulation};
  s.options.sim_jobs = 3000;
  s.options.sim_warmup = 300;
  s.options.base_seed = 1234;
  s.options.sim_raw_seed = true;
  s.options.sim_tails = true;

  // Pre-port bench body (bench/tail_latency.cpp before the port).
  std::ostringstream expected;
  Table table({"mu_I", "rho", "policy", "mean E[T]", "inel P50", "inel P99",
               "el P50", "el P99"});
  const CaseSpec& setting = s.cases.front();
  const SystemParams p = SystemParams::from_load(
      setting.k, setting.mu_i, setting.mu_e, setting.rho);
  for (const auto& policy : {make_inelastic_first(), make_elastic_first()}) {
    Histogram hist_i(0.0, 400.0 / setting.mu_i, 20000);
    Histogram hist_e(0.0, 400.0 / setting.mu_e, 20000);
    SimOptions opt;
    opt.num_jobs = 3000;
    opt.warmup_jobs = 300;
    opt.seed = 1234;
    opt.response_hist_i = &hist_i;
    opt.response_hist_e = &hist_e;
    const SimResult r = simulate(p, *policy, opt);
    table.add_row({format_double(setting.mu_i), format_double(setting.rho),
                   policy->name(),
                   format_double(r.mean_response_time.mean, 4),
                   format_double(hist_i.quantile(0.5), 4),
                   format_double(hist_i.quantile(0.99), 4),
                   format_double(hist_e.quantile(0.5), 4),
                   format_double(hist_e.quantile(0.99), 4)});
  }
  table.print(expected);

  EXPECT_EQ(render_view("tail", s), expected.str());
}

TEST(BenchPorts, TruncationViewMatchesHandRolledLoop) {
  Scenario s;
  s.name = "truncation-small";
  s.cases = {{4, 1.0, 1.0, 0.5, 0}};
  s.trunc_values = {10, 20, 40};
  s.policies = {"IF"};
  s.solvers = {SolverKind::kExactCtmc, SolverKind::kQbdAnalysis};

  const auto points = s.expand();
  SweepRunner runner(2);
  SweepStats stats;
  const auto results = runner.run(points, &stats);
  std::ostringstream rendered;
  print_view("truncation", rendered, s, points, results, stats);

  // Pre-port bench body (bench/ablation_truncation.cpp before the port).
  // The "solve ms" cell is wall time and inherently run-to-run volatile —
  // even the pre-port binary never reproduced it — so the expected table
  // takes that one cell from the engine result and every numeric cell
  // from direct solves.
  const double rho = 0.5;
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, rho);
  ExactCtmcOptions deep;
  deep.imax = deep.jmax = 40;
  const double reference =
      solve_exact_ctmc(p, InelasticFirst{}, deep).mean_response_time;
  const double qbd = analyze_inelastic_first(p).mean_response_time;
  std::ostringstream expected;
  Table table({"truncation", "states", "E[T]", "rel err", "boundary mass",
               "solve ms"});
  for (std::size_t t = 0; t < 2; ++t) {
    ExactCtmcOptions opt;
    opt.imax = opt.jmax = s.trunc_values[t];
    const ExactCtmcResult r = solve_exact_ctmc(p, InelasticFirst{}, opt);
    const double engine_ms = results[t * 2].solve_seconds * 1000.0;
    table.add_row({std::to_string(s.trunc_values[t]),
                   std::to_string(r.num_states),
                   format_double(r.mean_response_time),
                   format_double(
                       relative_error(r.mean_response_time, reference), 3),
                   format_double(r.boundary_mass, 3),
                   format_double(engine_ms, 4)});
  }
  expected << strprintf(
      "\n--- rho = %.1f (reference E[T] = %.6f at truncation %ld; "
      "suggested_truncation = %ld; QBD analysis = %.6f, err "
      "%.4f%%, ~0.1 ms) ---\n",
      rho, reference, 40L, suggested_truncation(rho, 1e-10), qbd,
      100.0 * relative_error(qbd, reference));
  table.print(expected);

  EXPECT_EQ(rendered.str(), expected.str());
}

TEST(BenchPorts, FitOrderViewMatchesHandRolledCoxianLoop) {
  Scenario s;
  s.name = "coxian-small";
  s.cases = {{4, 1.0, 1.0, 0.5, 0}, {2, 2.0, 1.0, 0.6, 0}};
  s.fit_orders = {1, 2, 3};
  s.policies = {"EF", "IF"};
  s.solvers = {SolverKind::kQbdAnalysis, SolverKind::kExactCtmc};
  s.options.truncation_epsilon = 1e-9;

  // Pre-port bench body (bench/ablation_coxian.cpp before the port).
  std::ostringstream expected;
  Table table({"k", "mu_I", "mu_E", "rho", "policy", "err 1-moment",
               "err 2-moment", "err 3-moment"});
  Accumulator err1_acc, err2_acc, err3_acc;
  for (const CaseSpec& setting : s.cases) {
    const SystemParams p = SystemParams::from_load(
        setting.k, setting.mu_i, setting.mu_e, setting.rho);
    ExactCtmcOptions opt;
    opt.imax = opt.jmax = suggested_truncation(p.rho(), 1e-9);
    const struct {
      const char* name;
      double exact;
      double v1, v2, v3;
    } rows[] = {
        {"EF", solve_exact_ctmc(p, ElasticFirst{}, opt).mean_response_time,
         analyze_elastic_first(p, BusyFitOrder::kOneMoment)
             .mean_response_time,
         analyze_elastic_first(p, BusyFitOrder::kTwoMoment)
             .mean_response_time,
         analyze_elastic_first(p, BusyFitOrder::kThreeMoment)
             .mean_response_time},
        {"IF", solve_exact_ctmc(p, InelasticFirst{}, opt).mean_response_time,
         analyze_inelastic_first(p, BusyFitOrder::kOneMoment)
             .mean_response_time,
         analyze_inelastic_first(p, BusyFitOrder::kTwoMoment)
             .mean_response_time,
         analyze_inelastic_first(p, BusyFitOrder::kThreeMoment)
             .mean_response_time},
    };
    for (const auto& row : rows) {
      const double e1 = relative_error(row.v1, row.exact);
      const double e2 = relative_error(row.v2, row.exact);
      const double e3 = relative_error(row.v3, row.exact);
      err1_acc.add(e1);
      err2_acc.add(e2);
      err3_acc.add(e3);
      table.add_row({std::to_string(setting.k), format_double(setting.mu_i),
                     format_double(setting.mu_e), format_double(setting.rho),
                     row.name, format_double(100.0 * e1, 3) + "%",
                     format_double(100.0 * e2, 3) + "%",
                     format_double(100.0 * e3, 3) + "%"});
    }
  }
  table.print(expected);
  expected << strprintf(
      "\nmean error: 1-moment %.3f%%, 2-moment %.3f%%, 3-moment "
      "%.4f%% — each extra busy-period moment buys roughly an "
      "order of magnitude, which is why §5.2 matches three.\n",
      100.0 * err1_acc.mean(), 100.0 * err2_acc.mean(),
      100.0 * err3_acc.mean());

  EXPECT_EQ(render_view("fit-order", s), expected.str());
}

TEST(BenchPorts, DominanceViewMatchesHandRolledThm3Loop) {
  Scenario s;
  s.name = "dominance-small";
  s.cases = {{4, 1.0, 1.0, 0.6, 0}};
  s.policies = {"EF", "Cap1"};
  s.solvers = {SolverKind::kTraceDominance};
  s.options.trace_horizon = 200.0;
  s.options.trace_seed = 2026;

  // Pre-port bench body (bench/dominance_thm3.cpp before the port).
  std::ostringstream expected;
  Table table({"mu_I", "mu_E", "rho", "policy", "max W viol", "max W_I viol",
               "avg W gap", "checkpoints"});
  double worst_violation = 0.0;
  const CaseSpec& setting = s.cases.front();
  const SystemParams p = SystemParams::from_load(
      setting.k, setting.mu_i, setting.mu_e, setting.rho);
  const Trace trace = generate_trace(p, 200.0, 2026);
  const WorkPath if_path = run_on_trace(trace, p, InelasticFirst{});
  const std::vector<PolicyPtr> family = {make_elastic_first(),
                                         make_inelastic_cap(1)};
  for (const auto& policy : family) {
    const WorkPath other = run_on_trace(trace, p, *policy);
    const DominanceReport report = check_dominance(if_path, other);
    double gap = 0.0;
    const int samples = 4000;
    for (int n = 0; n < samples; ++n) {
      const double t = 200.0 * (n + 0.5) / samples;
      gap += other.total_work_at(t) - if_path.total_work_at(t);
    }
    gap /= samples;
    worst_violation = std::max({worst_violation, report.max_total_violation,
                                report.max_inelastic_violation});
    table.add_row({format_double(setting.mu_i), format_double(setting.mu_e),
                   format_double(setting.rho), policy->name(),
                   format_double(report.max_total_violation, 3),
                   format_double(report.max_inelastic_violation, 3),
                   format_double(gap),
                   std::to_string(report.num_checkpoints)});
  }
  table.print(expected);
  expected << strprintf(
      "\nworst pointwise violation over all runs: %.3g "
      "(theory: exactly 0; float error only)\n",
      worst_violation);
  expected << "avg W gap >= 0 everywhere: IF keeps the least work in "
              "system, as Theorem 3 proves.\n";

  EXPECT_EQ(render_view("dominance", s), expected.str());
}

}  // namespace
}  // namespace esched
