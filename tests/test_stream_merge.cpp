// Tests for the streaming/resume/merge layer: streamed CSVs match batch
// CSVs byte-for-byte, an interrupted stream resumes to a byte-identical
// file, `merge_csv_reports` of shard CSVs reproduces the unsharded report
// (including empty shards), shard range math survives huge totals, the
// disk-cache field table keeps serializer/deserializer/count in sync, and
// `cache ls/gc` manifest + eviction behave.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "engine/disk_cache.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

namespace esched {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

/// Cheap deterministic mixed-solver scenario (analytic backends only).
Scenario stream_scenario() {
  Scenario s;
  s.name = "stream_test";
  s.k_values = {2};
  s.rho_values = {0.5, 0.7};
  s.mu_i_values = {0.5, 1.0, 2.0};
  s.mu_e_values = {1.0};
  s.policies = {"IF", "EF"};
  s.solvers = {SolverKind::kQbdAnalysis, SolverKind::kMmkBaseline};
  return s;
}

/// Streams `points` through a runner into `path` (resuming when the file
/// holds a partial run) and finishes the report.
void stream_sweep(const std::vector<RunPoint>& points,
                  const std::string& path) {
  StreamingCsvReport report(path, /*resume=*/true);
  SweepRunner runner(4);
  runner.run(points, nullptr,
             [&report](std::size_t index, const RunPoint& point,
                       const RunResult& result) {
               report.add_row(index, point, result);
             });
  report.finish(points.size());
}

TEST(ShardRange, PartitionsAndMatchesFloorFormula) {
  const std::size_t total = 10;
  const std::size_t count = 4;
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto [begin, end] = shard_range(total, i, count);
    EXPECT_EQ(begin, prev_end);  // contiguous, gap-free
    EXPECT_EQ(begin, i * total / count);  // the documented floor split
    EXPECT_LE(begin, end);
    covered += end - begin;
    prev_end = end;
  }
  EXPECT_EQ(prev_end, total);
  EXPECT_EQ(covered, total);
  EXPECT_THROW(shard_range(10, 4, 4), Error);
  EXPECT_THROW(shard_range(10, 0, 0), Error);
}

TEST(ShardRange, HugeTotalsDoNotOverflow) {
  // index * total wraps 64-bit arithmetic here; the division-first form
  // must still produce a clean partition into near-equal slices.
  const std::size_t total = std::size_t{1} << 62;
  const std::size_t count = 7;
  std::size_t prev_end = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto [begin, end] = shard_range(total, i, count);
    EXPECT_EQ(begin, prev_end);
    const std::size_t size = end - begin;
    EXPECT_GE(size, total / count);
    EXPECT_LE(size, total / count + 1);
    prev_end = end;
  }
  EXPECT_EQ(prev_end, total);
}

TEST(ShardRange, SmallTotalYieldsEmptyShards) {
  // total < count: every point lands somewhere, the rest are empty.
  std::size_t nonempty = 0;
  std::size_t prev_end = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto [begin, end] = shard_range(2, i, 4);
    EXPECT_EQ(begin, prev_end);
    nonempty += (end > begin) ? 1 : 0;
    prev_end = end;
  }
  EXPECT_EQ(prev_end, 2u);
  EXPECT_EQ(nonempty, 2u);
}

TEST(StreamingCsvReport, StreamedFileMatchesBatchReportByteForByte) {
  const Scenario s = stream_scenario();
  const auto points = s.expand();
  SweepRunner runner(4);
  const auto results = runner.run(points);

  const std::string batch_path = testing::TempDir() + "stream_batch.csv";
  write_csv_report(batch_path, points, results);

  const std::string stream_path = testing::TempDir() + "stream_live.csv";
  std::remove(stream_path.c_str());
  stream_sweep(points, stream_path);

  EXPECT_EQ(read_file(stream_path), read_file(batch_path));
  std::remove(batch_path.c_str());
  std::remove(stream_path.c_str());
}

TEST(StreamingCsvReport, ResumeAfterMidRowTruncationIsByteIdentical) {
  const Scenario s = stream_scenario();
  const auto points = s.expand();

  const std::string full_path = testing::TempDir() + "stream_full.csv";
  std::remove(full_path.c_str());
  stream_sweep(points, full_path);
  const std::string full = read_file(full_path);

  // Kill the run mid-row: cut a few bytes into the 6th data line.
  std::size_t newlines = 0;
  std::size_t cut = std::string::npos;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i] == '\n' && ++newlines == 6) {
      cut = i + 10;
      break;
    }
  }
  ASSERT_LT(cut, full.size());
  const std::string resumed_path = testing::TempDir() + "stream_resumed.csv";
  write_file(resumed_path, full.substr(0, cut));

  {
    StreamingCsvReport probe(resumed_path, /*resume=*/true);
    EXPECT_EQ(probe.rows_resumed(), 5u);  // the torn 6th row is dropped
    // Abandon without finishing: the truncated-but-clean file remains.
  }
  stream_sweep(points, resumed_path);
  EXPECT_EQ(read_file(resumed_path), full);

  // Rerunning an already-complete file is a no-op byte-wise.
  stream_sweep(points, full_path);
  EXPECT_EQ(read_file(full_path), full);

  std::remove(full_path.c_str());
  std::remove(resumed_path.c_str());
}

TEST(StreamingCsvReport, RefusesForeignHeader) {
  const std::string path = testing::TempDir() + "stream_foreign.csv";
  write_file(path, "a,b,c\n1,2,3\n");
  EXPECT_THROW(StreamingCsvReport(path, /*resume=*/true), Error);
  std::remove(path.c_str());
}

TEST(StreamingCsvReport, TornHeaderRestartsFresh) {
  // Killed before even the header's newline hit disk: resume must
  // restart cleanly, not error out until the user deletes the file.
  const Scenario s = stream_scenario();
  const auto points = s.expand();
  const std::string path = testing::TempDir() + "stream_torn_header.csv";
  write_file(path, "k,rho,mu_i");  // header prefix, no newline
  stream_sweep(points, path);
  {
    StreamingCsvReport probe(path, /*resume=*/true);
    EXPECT_EQ(probe.rows_resumed(), points.size());
  }
  std::remove(path.c_str());
}

TEST(StreamingCsvReport, RefusesResumingAnotherSweepsRowsUntouched) {
  // The schema header is uniform across scenarios, so resume must catch
  // a --out written by a different sweep via the rows themselves — and
  // leave the foreign file bitwise intact (truncation and appends are
  // deferred until every kept row has verified).
  Scenario other = stream_scenario();
  other.rho_values = {0.6, 0.8};  // different grid, same row count
  const auto other_points = other.expand();
  const std::string path = testing::TempDir() + "stream_mixed.csv";
  std::remove(path.c_str());
  stream_sweep(other_points, path);
  const std::string foreign = read_file(path);

  const auto points = stream_scenario().expand();
  ASSERT_EQ(points.size(), other_points.size());
  EXPECT_THROW(stream_sweep(points, path), Error);
  EXPECT_EQ(read_file(path), foreign);

  // Same with a *partial* foreign file (fewer rows than the sweep):
  // the new sweep's rows must buffer, never mix in behind foreign ones.
  std::size_t newlines = 0;
  std::size_t cut = std::string::npos;
  for (std::size_t i = 0; i < foreign.size(); ++i) {
    if (foreign[i] == '\n' && ++newlines == 11) {  // header + 10 rows
      cut = i + 1;
      break;
    }
  }
  ASSERT_LT(cut, foreign.size());
  write_file(path, foreign.substr(0, cut));
  EXPECT_THROW(stream_sweep(points, path), Error);
  EXPECT_EQ(read_file(path), foreign.substr(0, cut));
  std::remove(path.c_str());
}

TEST(Merge, ShardCsvsReproduceUnshardedReport) {
  const Scenario s = stream_scenario();
  const auto points = s.expand();
  SweepRunner runner(2);
  const auto results = runner.run(points);

  const std::string full_path = testing::TempDir() + "merge_full.csv";
  write_csv_report(full_path, points, results);

  const std::size_t count = 3;
  std::vector<std::string> shard_paths;
  for (std::size_t i = 0; i < count; ++i) {
    const auto [begin, end] = shard_range(points.size(), i, count);
    const std::vector<RunPoint> shard_points(points.begin() + begin,
                                             points.begin() + end);
    const std::vector<RunResult> shard_results(results.begin() + begin,
                                               results.begin() + end);
    shard_paths.push_back(testing::TempDir() + "merge_shard" +
                          std::to_string(i) + ".csv");
    write_csv_report(shard_paths.back(), shard_points, shard_results);
  }

  const std::string merged_path = testing::TempDir() + "merge_merged.csv";
  const MergeStats stats = merge_csv_reports(shard_paths, merged_path);
  EXPECT_EQ(stats.files, count);
  EXPECT_EQ(stats.rows, points.size());
  EXPECT_EQ(read_file(merged_path), read_file(full_path));

  std::remove(full_path.c_str());
  std::remove(merged_path.c_str());
  for (const auto& path : shard_paths) std::remove(path.c_str());
}

TEST(Merge, AcceptsHeaderOnlyCsvsFromEmptyShards) {
  Scenario s = stream_scenario();
  s.rho_values = {0.5};
  s.mu_i_values = {1.0};
  s.solvers = {SolverKind::kMmkBaseline};  // 2 points, 4 shards
  const auto points = s.expand();
  ASSERT_EQ(points.size(), 2u);
  SweepRunner runner(1);
  const auto results = runner.run(points);

  const std::string full_path = testing::TempDir() + "merge_small_full.csv";
  write_csv_report(full_path, points, results);

  std::vector<std::string> shard_paths;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto [begin, end] = shard_range(points.size(), i, 4);
    const std::vector<RunPoint> shard_points(points.begin() + begin,
                                             points.begin() + end);
    const std::vector<RunResult> shard_results(results.begin() + begin,
                                               results.begin() + end);
    shard_paths.push_back(testing::TempDir() + "merge_small_shard" +
                          std::to_string(i) + ".csv");
    write_csv_report(shard_paths.back(), shard_points, shard_results);
  }

  const std::string merged_path = testing::TempDir() + "merge_small_out.csv";
  const MergeStats stats = merge_csv_reports(shard_paths, merged_path);
  EXPECT_EQ(stats.rows, 2u);
  EXPECT_EQ(read_file(merged_path), read_file(full_path));

  std::remove(full_path.c_str());
  std::remove(merged_path.c_str());
  for (const auto& path : shard_paths) std::remove(path.c_str());
}

TEST(Merge, OutputNamingAnInputDoesNotDestroyIt) {
  const std::string a = testing::TempDir() + "merge_inplace_a.csv";
  const std::string b = testing::TempDir() + "merge_inplace_b.csv";
  write_file(a, "x,y\n1,2\n");
  write_file(b, "x,y\n3,4\n");
  const MergeStats stats = merge_csv_reports({a, b}, b);  // --out == input
  EXPECT_EQ(stats.rows, 2u);
  EXPECT_EQ(read_file(b), "x,y\n1,2\n3,4\n# summary rows=2\n");
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Merge, RejectsMismatchedHeadersAndTruncatedRows) {
  const std::string a = testing::TempDir() + "merge_bad_a.csv";
  const std::string b = testing::TempDir() + "merge_bad_b.csv";
  const std::string out = testing::TempDir() + "merge_bad_out.csv";
  write_file(a, "x,y\n1,2\n");
  write_file(b, "x,z\n3,4\n");
  EXPECT_THROW(merge_csv_reports({a, b}, out), Error);
  write_file(b, "x,y\n3,4");  // no trailing newline: torn row
  EXPECT_THROW(merge_csv_reports({a, b}, out), Error);
  write_file(b, "x,y\n3,4,5\n");  // arity mismatch
  EXPECT_THROW(merge_csv_reports({a, b}, out), Error);
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(out.c_str());
}

TEST(DiskCacheFieldTable, SerializerAndCountStayInSync) {
  RunResult r;
  r.mean_response_time = 1.25;
  r.num_states = 421;
  r.dom_checkpoints = 17;
  r.solver_iterations = 33;
  r.solve_seconds = 0.125;
  const std::string text = serialize_run_result(r);

  // One line per table field plus the format tag.
  std::size_t lines = 0;
  for (const char c : text) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, run_result_field_count() + 1);

  const auto loaded = deserialize_run_result(text);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(numerically_equal(*loaded, r));
  EXPECT_EQ(loaded->solve_seconds, r.solve_seconds);

  // Dropping ANY single field line must read as a miss — the expected
  // count comes from the same table as the serializer, so the two cannot
  // silently desync when RunResult grows a field.
  std::vector<std::string> all_lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) all_lines.push_back(line);
  for (std::size_t drop = 1; drop < all_lines.size(); ++drop) {
    std::ostringstream damaged;
    for (std::size_t n = 0; n < all_lines.size(); ++n) {
      if (n != drop) damaged << all_lines[n] << '\n';
    }
    EXPECT_FALSE(deserialize_run_result(damaged.str()).has_value())
        << "dropped: " << all_lines[drop];
  }
}

TEST(DiskCacheHygiene, ListAndGcEvictOldestFirst) {
  namespace fs = std::filesystem;
  const std::string dir = testing::TempDir() + "esched_cache_gc_test";
  fs::remove_all(dir);
  const DiskResultCache cache(dir);

  RunResult r;
  r.mean_response_time = 2.0;
  cache.store("key-a", r);
  cache.store("key-b", r);
  cache.store("key-c", r);
  // Age key-a artificially so eviction order is deterministic.
  fs::last_write_time(cache.entry_path("key-a"),
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(10));
  // A stale temp file from a crashed writer — and a fresh one that
  // could belong to a live concurrent store and must survive gc.
  write_file(dir + "/dead.result.tmp.1.2", "junk");
  fs::last_write_time(dir + "/dead.result.tmp.1.2",
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(10));
  write_file(dir + "/live.result.tmp.3.4", "junk");

  auto entries = cache.list_entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.front().key, "key-a");  // oldest first
  for (const auto& entry : entries) {
    EXPECT_GT(entry.bytes, 0u);
    EXPECT_FALSE(entry.key.empty());
  }

  // Age-based eviction takes only the old entry (and the temp file).
  const CacheGcResult aged = cache.gc(3600.0, std::nullopt);
  EXPECT_EQ(aged.scanned, 3u);
  EXPECT_EQ(aged.removed, 1u);
  EXPECT_FALSE(cache.load("key-a").has_value());
  EXPECT_TRUE(cache.load("key-b").has_value());
  EXPECT_FALSE(fs::exists(dir + "/dead.result.tmp.1.2"));
  EXPECT_TRUE(fs::exists(dir + "/live.result.tmp.3.4"));

  // Size-based eviction clears the rest.
  const CacheGcResult sized = cache.gc(std::nullopt, std::uintmax_t{0});
  EXPECT_EQ(sized.removed, 2u);
  EXPECT_EQ(sized.bytes_kept, 0u);
  EXPECT_TRUE(cache.list_entries().empty());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace esched
