// Unit tests for the dense linear algebra substrate and the CSR sparse
// representation behind the stationary solvers.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "linalg/csr.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace esched {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, IdentityAndArithmetic) {
  Matrix i2 = Matrix::identity(2);
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const Matrix sum = a + i2;
  EXPECT_DOUBLE_EQ(sum(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - i2;
  EXPECT_DOUBLE_EQ(diff(0, 0), 0.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  EXPECT_THROW(a += Matrix(3, 3), Error);
}

TEST(Matrix, MatmulKnownProduct) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  }
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = v++;
  }
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  const Matrix p = matmul(a, b);
  EXPECT_DOUBLE_EQ(p(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 154.0);
}

TEST(Matrix, VectorProducts) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const Vector xm = vecmat({1.0, 1.0}, a);  // [4, 6]
  EXPECT_DOUBLE_EQ(xm[0], 4.0);
  EXPECT_DOUBLE_EQ(xm[1], 6.0);
  const Vector mx = matvec(a, {1.0, 1.0});  // [3, 7]
  EXPECT_DOUBLE_EQ(mx[0], 3.0);
  EXPECT_DOUBLE_EQ(mx[1], 7.0);
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_DOUBLE_EQ(sum(Vector{1.0, 2.0, 3.0}), 6.0);
}

TEST(Matrix, TransposeAndNorms) {
  Matrix a(2, 3);
  a(0, 2) = -5.0;
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), -5.0);
  EXPECT_DOUBLE_EQ(max_abs(a), 5.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, Matrix(2, 3)), 5.0);
}

TEST(Matrix, NormalizeProbability) {
  Vector v = {1.0, 3.0};
  normalize_probability(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
  Vector zero = {0.0, 0.0};
  EXPECT_THROW(normalize_probability(zero), Error);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a(3, 3);
  a(0, 0) = 2;  a(0, 1) = 1;  a(0, 2) = 1;
  a(1, 0) = 1;  a(1, 1) = 3;  a(1, 2) = 2;
  a(2, 0) = 1;  a(2, 1) = 0;  a(2, 2) = 0;
  // Solution of A x = [4, 5, 6]: x = [6, ...]. Compute expected via direct
  // elimination: x0 = 6 from row 2; 2*6 + x1 + x2 = 4 => x1 + x2 = -8;
  // 6 + 3 x1 + 2 x2 = 5 => 3 x1 + 2 x2 = -1 => x1 = 15, x2 = -23.
  const Vector x = lu_solve(a, {4.0, 5.0, 6.0});
  EXPECT_NEAR(x[0], 6.0, 1e-12);
  EXPECT_NEAR(x[1], 15.0, 1e-12);
  EXPECT_NEAR(x[2], -23.0, 1e-12);
}

TEST(Lu, InverseTimesMatrixIsIdentity) {
  Matrix a(4, 4);
  // A well-conditioned nonsymmetric matrix.
  const double vals[4][4] = {{4, 1, 0, 2}, {1, 5, 1, 0}, {0, 1, 6, 1},
                             {2, 0, 1, 7}};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = vals[r][c];
  }
  const Matrix inv = lu_inverse(a);
  const Matrix prod = matmul(a, inv);
  EXPECT_LT(max_abs_diff(prod, Matrix::identity(4)), 1e-12);
}

TEST(Lu, SolveTransposedMatchesExplicitTranspose) {
  Matrix a(3, 3);
  const double vals[3][3] = {{3, 1, 0}, {1, 4, 2}, {0, 2, 5}};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = vals[r][c] + (r == 0 && c == 2 ? 0.5 : 0.0);
  }
  const Vector b = {1.0, 2.0, 3.0};
  const Vector via_transposed = LuFactorization(a).solve_transposed(b);
  const Vector direct = lu_solve(a.transpose(), b);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(via_transposed[r], direct[r], 1e-12);
  }
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const Vector x = lu_solve(a, {3.0, 4.0});  // swap: x = [4, 3]
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, Error);
}

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW(LuFactorization{Matrix(2, 3)}, Error);
}

TEST(Csr, FromTripletsRoundTripsThroughDense) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      3, 4, {{2, 0, 5.0}, {0, 3, 1.0}, {0, 1, 2.0}, {1, 2, -3.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 4u);
  const Matrix d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(d(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 2), -3.0);
  EXPECT_DOUBLE_EQ(d(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
  // Rows are sorted by column regardless of triplet input order.
  EXPECT_EQ(m.row_nnz(0), 2u);
  EXPECT_EQ(m.row_cols(0)[0], 1u);
  EXPECT_EQ(m.row_cols(0)[1], 3u);
}

TEST(Csr, FromTripletsMergesDuplicatesAndChecksBounds) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      2, 2, {{0, 1, 1.5}, {0, 1, 2.5}, {1, 0, 1.0}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.to_dense()(0, 1), 4.0);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}), Error);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{0, 2, 1.0}}), Error);
}

TEST(Csr, TransposeMatchesDenseTranspose) {
  // Includes an empty row (1) and an empty column (0) to exercise the
  // counting-sort bookkeeping off the happy path.
  const CsrMatrix m = CsrMatrix::from_triplets(
      3, 3, {{0, 1, 1.0}, {0, 2, 2.0}, {2, 1, 3.0}, {2, 2, 4.0}});
  const CsrMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 3u);
  const Matrix td = t.to_dense();
  const Matrix d = m.to_dense();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(td(r, c), d(c, r));
    }
  }
  // Within each transposed row, entries keep ascending original-row order
  // (the sweep-order contract the stationary solvers depend on).
  EXPECT_EQ(t.row_nnz(1), 2u);
  EXPECT_EQ(t.row_cols(1)[0], 0u);
  EXPECT_EQ(t.row_cols(1)[1], 2u);
}

TEST(Csr, MultiplyMatchesDenseMatvec) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      3, 3, {{0, 0, 2.0}, {0, 2, 1.0}, {1, 1, -1.0}, {2, 0, 4.0}});
  const Vector x = {1.0, 2.0, 3.0};
  const Vector y = m.multiply(x);
  const Vector expect = matvec(m.to_dense(), x);
  ASSERT_EQ(y.size(), expect.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(y[i], expect[i]);
  }
}

TEST(Csr, StreamingRebuildReusesShape) {
  CsrMatrix m;
  m.begin_rows(2, 3);
  EXPECT_FALSE(m.complete());
  m.push(0, 1.0);
  m.push(2, 2.0);
  m.next_row();
  m.push(1, 3.0);
  m.next_row();
  ASSERT_TRUE(m.complete());
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.to_dense()(1, 1), 3.0);
  // Rebuild with different values and fewer entries: old contents vanish.
  m.begin_rows(2, 3);
  m.push(1, 9.0);
  m.next_row();
  m.next_row();
  ASSERT_TRUE(m.complete());
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.to_dense()(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(m.to_dense()(1, 1), 0.0);
}

}  // namespace
}  // namespace esched
