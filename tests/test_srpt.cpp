// Appendix A tests: the generalized SRPT-k schedule, the LP lower bound,
// and the Theorem 9 guarantee ALG <= 4 * LP* checked over random instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "srpt/lp_bound.hpp"
#include "srpt/srpt.hpp"

namespace esched {
namespace {

TEST(SrptSchedule, SingleElasticJobUsesCap) {
  // One job, size 8, cap 4, k = 8: only 4 servers usable -> finishes at 2.
  const BatchScheduleResult r = srpt_k_schedule({{8.0, 4.0}}, 8);
  EXPECT_DOUBLE_EQ(r.completion_times[0], 2.0);
  EXPECT_DOUBLE_EQ(r.total_response_time, 2.0);
}

TEST(SrptSchedule, TwoJobsSharePriorityOrder) {
  // Sizes 1 and 2, caps 1, k = 1: SPT runs the size-1 job first.
  const BatchScheduleResult r =
      srpt_k_schedule({{2.0, 1.0}, {1.0, 1.0}}, 1);
  EXPECT_DOUBLE_EQ(r.completion_times[1], 1.0);
  EXPECT_DOUBLE_EQ(r.completion_times[0], 3.0);
  EXPECT_DOUBLE_EQ(r.total_response_time, 4.0);
}

TEST(SrptSchedule, LeftoverServersFlowDownThePriorityList) {
  // Job A: size 4, cap 1. Job B: size 8, cap 8. k = 4. SPT order: A, B.
  // A takes 1 server, B takes 3: A finishes at 4 (B has 8 - 12 < 0... B
  // finishes earlier: at t = 8/3). After B, A continues alone.
  const BatchScheduleResult r =
      srpt_k_schedule({{4.0, 1.0}, {8.0, 8.0}}, 4);
  EXPECT_NEAR(r.completion_times[1], 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.completion_times[0], 4.0, 1e-12);
}

TEST(SrptSchedule, SpeedScalesCompletions) {
  const std::vector<BatchJob> jobs = {{3.0, 1.0}, {5.0, 2.0}, {7.0, 4.0}};
  const BatchScheduleResult r1 = srpt_k_schedule(jobs, 4, 1.0);
  const BatchScheduleResult r2 = srpt_k_schedule(jobs, 4, 2.0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_NEAR(r2.completion_times[j], r1.completion_times[j] / 2.0, 1e-12);
  }
}

TEST(SrptSchedule, MakespanIsLastCompletion) {
  const BatchScheduleResult r =
      srpt_k_schedule({{1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}}, 2);
  double last = 0.0;
  for (double c : r.completion_times) last = std::max(last, c);
  EXPECT_DOUBLE_EQ(r.makespan, last);
}

TEST(SrptSchedule, RejectsBadInput) {
  EXPECT_THROW(srpt_k_schedule({}, 2), Error);
  EXPECT_THROW(srpt_k_schedule({{0.0, 1.0}}, 2), Error);
  EXPECT_THROW(srpt_k_schedule({{1.0, 1.0}}, 0), Error);
  EXPECT_THROW(priority_schedule({{1.0, 1.0}}, 1, {0, 1}), Error);
}

TEST(LpBound, SerialSptClosedForm) {
  // Jobs 1, 2 (caps 1), k = 2: U_1 = 0, U_2 = 1.
  // LP* = (0 + 0.5)/2 + (1 + 1)/2 + 0.5*1/1 + 0.5*2/1 = 0.25 + 1 + 1.5.
  const double lp = lp_lower_bound({{1.0, 1.0}, {2.0, 1.0}}, 2);
  EXPECT_NEAR(lp, 2.75, 1e-12);
}

TEST(LpBound, SptOrderMinimizesTheSerialCost) {
  const std::vector<BatchJob> jobs = {{3.0, 2.0}, {1.0, 1.0}, {2.0, 4.0}};
  const double best = lp_lower_bound(jobs, 3);
  std::vector<int> order = {0, 1, 2};
  std::sort(order.begin(), order.end());
  do {
    EXPECT_GE(lp_cost_of_serial_order(jobs, 3, order), best - 1e-12);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(LpBound, LowerBoundsTheAlgorithmOnTinyInstances) {
  // LP* <= OPT <= best static priority <= ALG.
  const std::vector<BatchJob> jobs = {
      {2.0, 1.0}, {4.0, 2.0}, {1.0, 1.0}, {6.0, 8.0}};
  const int k = 4;
  const double lp = lp_lower_bound(jobs, k);
  const double best = best_static_priority_cost(jobs, k);
  const double alg = srpt_k_schedule(jobs, k).total_response_time;
  EXPECT_LE(lp, best + 1e-9);
  EXPECT_LE(best, alg + 1e-9);
}

struct RandomInstanceCase {
  int n;
  int k;
  std::uint64_t seed;
};

class Theorem9 : public testing::TestWithParam<RandomInstanceCase> {};

// Theorem 9: SRPT-k total response time is within 4x of the LP bound.
TEST_P(Theorem9, FourApproximationHolds) {
  const RandomInstanceCase& c = GetParam();
  Xoshiro256 rng(c.seed);
  std::vector<BatchJob> jobs;
  jobs.reserve(static_cast<std::size_t>(c.n));
  for (int j = 0; j < c.n; ++j) {
    BatchJob job;
    // Sizes spread over two orders of magnitude; caps mix sequential
    // (cap 1) and parallelizable jobs.
    job.size = std::exp(uniform(rng, -1.5, 3.0));
    job.cap = bernoulli(rng, 0.5)
                  ? 1.0
                  : 1.0 + std::floor(uniform(rng, 0.0, 2.0 * c.k));
    jobs.push_back(job);
  }
  const double alg = srpt_k_schedule(jobs, c.k).total_response_time;
  const double lp = lp_lower_bound(jobs, c.k);
  ASSERT_GT(lp, 0.0);
  EXPECT_LE(alg / lp, 4.0) << "n=" << c.n << " k=" << c.k;
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, Theorem9,
    testing::Values(RandomInstanceCase{5, 2, 1}, RandomInstanceCase{10, 4, 2},
                    RandomInstanceCase{50, 4, 3},
                    RandomInstanceCase{50, 16, 4},
                    RandomInstanceCase{200, 8, 5},
                    RandomInstanceCase{1000, 8, 6},
                    RandomInstanceCase{1000, 32, 7},
                    RandomInstanceCase{5000, 16, 8}));

TEST(Theorem9, AllCapOneMatchesSrptKClassic) {
  // With caps all 1 the schedule is classic SRPT-k; ratio still <= 4 and
  // typically much smaller.
  Xoshiro256 rng(99);
  std::vector<BatchJob> jobs;
  for (int j = 0; j < 400; ++j) {
    jobs.push_back({std::exp(uniform(rng, -1.0, 2.0)), 1.0});
  }
  const double alg = srpt_k_schedule(jobs, 8).total_response_time;
  const double lp = lp_lower_bound(jobs, 8);
  EXPECT_LE(alg / lp, 4.0);
  EXPECT_GE(alg / lp, 1.0);
}

TEST(BestStaticPriority, RefusesLargeInstances) {
  std::vector<BatchJob> jobs(10, BatchJob{1.0, 1.0});
  EXPECT_THROW(best_static_priority_cost(jobs, 2), Error);
}

}  // namespace
}  // namespace esched
