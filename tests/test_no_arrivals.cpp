// Theorem 6 (the mu_I < mu_E counterexample): k = 2 servers, mu_E = 2
// mu_I, no arrivals, starting with two inelastic jobs and one elastic job:
//   E[T^IF] = (35/12) / mu_I  and  E[T^EF] = (33/12) / mu_I,
// so EF strictly beats IF. We verify the exact rationals via the
// absorbing-chain solver and cross-check with simulation-free closed forms.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/no_arrivals.hpp"
#include "core/policies.hpp"

namespace esched {
namespace {

SystemParams thm6_params(double mu_i) {
  SystemParams p;
  p.k = 2;
  p.lambda_i = 0.0;
  p.lambda_e = 0.0;
  p.mu_i = mu_i;
  p.mu_e = 2.0 * mu_i;
  return p;
}

// NOTE on normalization: the paper's Theorem 6 computes E[T] as the SUM of
// the three jobs' response times, (35/12)/mu_I under IF and (33/12)/mu_I
// under EF. mean_response_time_no_arrivals() returns the per-job MEAN, so
// the expected values below divide the paper's constants by 3 jobs.
TEST(Theorem6, InelasticFirstExactValue) {
  for (double mu_i : {0.5, 1.0, 3.0}) {
    const SystemParams p = thm6_params(mu_i);
    const double et =
        mean_response_time_no_arrivals(p, InelasticFirst{}, {2, 1});
    EXPECT_NEAR(et, (35.0 / 12.0) / 3.0 / mu_i, 1e-10) << "mu_i=" << mu_i;
  }
}

TEST(Theorem6, ElasticFirstExactValue) {
  for (double mu_i : {0.5, 1.0, 3.0}) {
    const SystemParams p = thm6_params(mu_i);
    const double et =
        mean_response_time_no_arrivals(p, ElasticFirst{}, {2, 1});
    EXPECT_NEAR(et, (33.0 / 12.0) / 3.0 / mu_i, 1e-10) << "mu_i=" << mu_i;
  }
}

TEST(Theorem6, EfStrictlyBeatsIf) {
  const SystemParams p = thm6_params(1.0);
  const double et_if =
      mean_response_time_no_arrivals(p, InelasticFirst{}, {2, 1});
  const double et_ef =
      mean_response_time_no_arrivals(p, ElasticFirst{}, {2, 1});
  EXPECT_LT(et_ef, et_if);
  EXPECT_NEAR(et_if - et_ef, 2.0 / 12.0 / 3.0, 1e-10);
}

// Sanity closed forms for degenerate starting states.
TEST(NoArrivals, SingleInelasticJob) {
  const SystemParams p = thm6_params(2.0);
  // One inelastic job alone: E[T] = 1/mu_I regardless of policy.
  EXPECT_NEAR(mean_response_time_no_arrivals(p, InelasticFirst{}, {1, 0}),
              0.5, 1e-12);
  EXPECT_NEAR(mean_response_time_no_arrivals(p, ElasticFirst{}, {1, 0}), 0.5,
              1e-12);
}

TEST(NoArrivals, SingleElasticJobUsesAllServers) {
  const SystemParams p = thm6_params(1.0);  // k=2, mu_E=2
  // One elastic job on 2 servers: rate k mu_E = 4 => E[T] = 1/4.
  EXPECT_NEAR(mean_response_time_no_arrivals(p, ElasticFirst{}, {0, 1}),
              0.25, 1e-12);
  EXPECT_NEAR(mean_response_time_no_arrivals(p, InelasticFirst{}, {0, 1}),
              0.25, 1e-12);
}

TEST(NoArrivals, TwoInelasticJobsInParallel) {
  const SystemParams p = thm6_params(1.0);  // k=2
  // Two inelastic jobs run in parallel: first completion Exp(2 mu_I), the
  // remaining job memorylessly needs Exp(mu_I):
  //   E[sum T] = 2 * (1/2) + 1 = 2;  E[T] = 1.
  EXPECT_NEAR(mean_response_time_no_arrivals(p, InelasticFirst{}, {2, 0}),
              1.0, 1e-12);
}

// When mu_I = mu_E and the start state is symmetric-ish, IF should not lose
// (Theorem 1 intuition carries to the transient case for this start).
TEST(NoArrivals, EqualRatesIfWeaklyBetter) {
  SystemParams p;
  p.k = 2;
  p.mu_i = 1.0;
  p.mu_e = 1.0;
  for (long i0 : {1L, 2L, 3L}) {
    for (long j0 : {1L, 2L}) {
      const double et_if =
          mean_response_time_no_arrivals(p, InelasticFirst{}, {i0, j0});
      const double et_ef =
          mean_response_time_no_arrivals(p, ElasticFirst{}, {i0, j0});
      EXPECT_LE(et_if, et_ef * (1.0 + 1e-12)) << i0 << "," << j0;
    }
  }
}

TEST(NoArrivals, RejectsEmptyStart) {
  const SystemParams p = thm6_params(1.0);
  EXPECT_THROW(mean_response_time_no_arrivals(p, InelasticFirst{}, {0, 0}),
               Error);
}

// The theorem's threshold behavior: with mu_E = mu_I (not 2x), IF is
// optimal again for the same start state.
TEST(Theorem6, ReversesWhenSizesEqual) {
  SystemParams p;
  p.k = 2;
  p.mu_i = 1.0;
  p.mu_e = 1.0;
  const double et_if =
      mean_response_time_no_arrivals(p, InelasticFirst{}, {2, 1});
  const double et_ef =
      mean_response_time_no_arrivals(p, ElasticFirst{}, {2, 1});
  EXPECT_LE(et_if, et_ef);
}

}  // namespace
}  // namespace esched
