// Tests of the paper's optimality results (Section 4) using the exact
// truncated-chain solver:
//  - Theorem 1 / Theorem 5: when mu_I >= mu_E, IF minimizes E[T] over the
//    (work-conserving) policy family we can enumerate.
//  - Section 4.3: when mu_I < mu_E there are settings where EF beats IF.
//  - Appendix B: idling never helps.
#include <gtest/gtest.h>

#include <vector>

#include "core/exact_ctmc.hpp"
#include "core/policies.hpp"

namespace esched {
namespace {

double exact_et(const SystemParams& p, const AllocationPolicy& policy,
                long trunc = 0) {
  ExactCtmcOptions opt;
  const long level = trunc > 0 ? trunc : suggested_truncation(p.rho(), 1e-9);
  opt.imax = level;
  opt.jmax = level;
  return solve_exact_ctmc(p, policy, opt).mean_response_time;
}

std::vector<PolicyPtr> policy_family(int k) {
  std::vector<PolicyPtr> family = {make_inelastic_first(),
                                   make_elastic_first(), make_fair_share()};
  for (int cap = 1; cap < k; ++cap) family.push_back(make_inelastic_cap(cap));
  return family;
}

struct OptimalityCase {
  double mu_i;
  double mu_e;
  double rho;
};

class IfOptimalWhenInelasticSmaller
    : public testing::TestWithParam<OptimalityCase> {};

// Theorem 5: mu_I >= mu_E (inelastic jobs smaller on average) implies IF is
// optimal. We check it is at least optimal within the enumerable family.
TEST_P(IfOptimalWhenInelasticSmaller, BeatsWholeFamily) {
  const OptimalityCase& c = GetParam();
  ASSERT_GE(c.mu_i, c.mu_e);
  const int k = 4;
  const SystemParams p = SystemParams::from_load(k, c.mu_i, c.mu_e, c.rho);
  const double et_if = exact_et(p, InelasticFirst{});
  for (const auto& policy : policy_family(k)) {
    const double et = exact_et(p, *policy);
    // Strict numerical slack: the truncated solves agree to ~1e-8.
    EXPECT_LE(et_if, et * (1.0 + 1e-7))
        << policy->name() << " beat IF at mu_i=" << c.mu_i
        << " mu_e=" << c.mu_e << " rho=" << c.rho;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Theorem5Grid, IfOptimalWhenInelasticSmaller,
    testing::Values(OptimalityCase{1.0, 1.0, 0.5},   // Theorem 1 (equal)
                    OptimalityCase{1.0, 1.0, 0.8},
                    OptimalityCase{2.0, 1.0, 0.5},   // Theorem 5 (mu_I > mu_E)
                    OptimalityCase{2.0, 1.0, 0.9},
                    OptimalityCase{3.25, 1.0, 0.7},
                    OptimalityCase{1.5, 0.5, 0.6}));

// Section 4.3: with mu_I < mu_E and high enough load, EF beats IF.
TEST(EfCanWin, HighLoadSmallElasticJobs) {
  const SystemParams p = SystemParams::from_load(4, 0.25, 1.0, 0.9);
  const double et_if = exact_et(p, InelasticFirst{});
  const double et_ef = exact_et(p, ElasticFirst{});
  EXPECT_LT(et_ef, et_if);
}

// ... but mu_I < mu_E does NOT always favor EF: at low load IF can still
// win (Figure 4a shows IF dominating most of the mu_I < mu_E region).
TEST(EfCanWin, LowLoadStillFavorsIfNearTheDiagonal) {
  const SystemParams p = SystemParams::from_load(4, 0.9, 1.0, 0.5);
  const double et_if = exact_et(p, InelasticFirst{});
  const double et_ef = exact_et(p, ElasticFirst{});
  EXPECT_LT(et_if, et_ef);
}

// Appendix B: adding idling to IF or EF never reduces mean response time.
TEST(IdlingNeverHelps, AcrossLoadsAndPolicies) {
  for (double rho : {0.5, 0.8}) {
    const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, rho);
    for (const auto& base : {make_inelastic_first(), make_elastic_first()}) {
      const double et_base = exact_et(p, *base);
      for (double idle : {0.5, 1.0, 2.0}) {
        const double et_idle = exact_et(p, *make_idling(base, idle));
        EXPECT_GE(et_idle, et_base * (1.0 - 1e-9))
            << base->name() << " idle=" << idle << " rho=" << rho;
      }
    }
  }
}

// The GREEDY* intuition of Theorem 1: when mu_I == mu_E every non-idling
// policy in the family that always maximizes the departure rate has the
// same departure rate in every state, but policies differ in how they
// position the system for the future; IF's E[T] must still be minimal.
TEST(Theorem1, EqualRatesIfMatchesOrBeatsCapPolicies) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const double et_if = exact_et(p, InelasticFirst{});
  for (int cap = 0; cap <= 4; ++cap) {
    const double et = exact_et(p, InelasticCap{cap});
    EXPECT_LE(et_if, et * (1.0 + 1e-7)) << "cap=" << cap;
  }
}

// Monotonicity in the cap parameter when mu_I > mu_E: pushing the policy
// towards IF (larger cap) helps.
TEST(CapSweep, LargerCapHelpsWhenInelasticSmaller) {
  const SystemParams p = SystemParams::from_load(4, 2.0, 1.0, 0.8);
  double prev = 1e100;
  for (int cap = 0; cap <= 4; ++cap) {
    const double et = exact_et(p, InelasticCap{cap});
    EXPECT_LE(et, prev * (1.0 + 1e-9)) << "cap=" << cap;
    prev = et;
  }
}

}  // namespace
}  // namespace esched
