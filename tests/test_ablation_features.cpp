// Tests for the ablation knob (busy-period fit order) and the simulator's
// response-time histogram collection.
#include <gtest/gtest.h>

#include "common/numeric.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "queueing/mm1.hpp"
#include "sim/cluster_sim.hpp"

namespace esched {
namespace {

TEST(BusyFitOrder, OneMomentIsExponentialFit) {
  const Moments3 m = MM1(0.8, 1.0).busy_period_moments();
  const Coxian2Params fit = fit_busy_period(m, BusyFitOrder::kOneMoment);
  EXPECT_NEAR(fit.nu1, 1.0 / m.m1, 1e-12);
  EXPECT_DOUBLE_EQ(fit.p, 0.0);
}

TEST(BusyFitOrder, TwoMomentMatchesFirstTwo) {
  const Moments3 m = MM1(0.8, 1.0).busy_period_moments();
  const PhaseType fitted =
      fit_busy_period(m, BusyFitOrder::kTwoMoment).to_phase_type();
  EXPECT_NEAR(fitted.raw_moment(1) / m.m1, 1.0, 1e-8);
  EXPECT_NEAR(fitted.raw_moment(2) / m.m2, 1.0, 1e-8);
  // Third moment deliberately NOT matched (it is the minimal feasible).
  EXPECT_LT(fitted.raw_moment(3), m.m3);
}

TEST(BusyFitOrder, ThreeMomentMatchesAll) {
  const Moments3 m = MM1(0.8, 1.0).busy_period_moments();
  const PhaseType fitted =
      fit_busy_period(m, BusyFitOrder::kThreeMoment).to_phase_type();
  EXPECT_NEAR(fitted.raw_moment(3) / m.m3, 1.0, 1e-6);
}

TEST(BusyFitOrder, MoreMomentsMeanLowerAnalysisError) {
  // The ablation claim as an invariant, on a high-load EF point where the
  // busy-period shape matters most.
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.9);
  ExactCtmcOptions opt;
  opt.imax = opt.jmax = suggested_truncation(p.rho(), 1e-9);
  const double exact =
      solve_exact_ctmc(p, ElasticFirst{}, opt).mean_response_time;
  const double e1 = relative_error(
      analyze_elastic_first(p, BusyFitOrder::kOneMoment).mean_response_time,
      exact);
  const double e2 = relative_error(
      analyze_elastic_first(p, BusyFitOrder::kTwoMoment).mean_response_time,
      exact);
  const double e3 = relative_error(
      analyze_elastic_first(p, BusyFitOrder::kThreeMoment)
          .mean_response_time,
      exact);
  EXPECT_LT(e3, e2);
  EXPECT_LT(e2, e1);
  EXPECT_LT(e3, 0.005);
}

TEST(SimHistograms, CollectPostWarmupResponseTimes) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.6);
  Histogram hist_i(0.0, 100.0, 5000);
  Histogram hist_e(0.0, 100.0, 5000);
  SimOptions opt;
  opt.num_jobs = 60000;
  opt.warmup_jobs = 6000;
  opt.seed = 5;
  opt.response_hist_i = &hist_i;
  opt.response_hist_e = &hist_e;
  const SimResult r = simulate(p, InelasticFirst{}, opt);
  EXPECT_EQ(hist_i.total(), r.inelastic.completed);
  EXPECT_EQ(hist_e.total(), r.elastic.completed);
  EXPECT_EQ(hist_i.overflow(), 0u);
  // Quantiles are ordered and bracket the mean sensibly.
  const double p50 = hist_i.quantile(0.5);
  const double p99 = hist_i.quantile(0.99);
  EXPECT_LT(p50, p99);
  EXPECT_LT(p50, r.inelastic.response_time.mean);   // right-skewed
  EXPECT_GT(p99, r.inelastic.response_time.mean);
}

TEST(SimHistograms, IfProtectsInelasticTail) {
  // The operational claim of the tail_latency experiment, as a test: when
  // inelastic jobs are small (mu_I > mu_E), their P99 under IF is far
  // below their P99 under EF.
  const SystemParams p = SystemParams::from_load(4, 3.25, 1.0, 0.8);
  auto tail = [&](const AllocationPolicy& policy) {
    Histogram hist(0.0, 200.0, 20000);
    SimOptions opt;
    opt.num_jobs = 80000;
    opt.warmup_jobs = 8000;
    opt.seed = 6;
    opt.response_hist_i = &hist;
    simulate(p, policy, opt);
    return hist.quantile(0.99);
  };
  const double p99_if = tail(InelasticFirst{});
  const double p99_ef = tail(ElasticFirst{});
  EXPECT_LT(p99_if * 3.0, p99_ef);
}

}  // namespace
}  // namespace esched
