// Tests for esched-lint: every rule gets a fail fixture (the violation
// fires, with the right rule id and line) and a pass fixture (the
// approved idiom stays clean), plus the suppression grammar, the README
// vocabulary parser, the runner's exit codes, and — the check CI leans
// on — the real src/ tree staying lint-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace esched {
namespace {

namespace fs = std::filesystem;

std::string read_fixture(const std::string& name) {
  const fs::path path = fs::path(ESCHED_LINT_FIXTURE_DIR) / name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::size_t count_rule(const std::vector<lint::Finding>& findings,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const lint::Finding& f) { return f.rule == rule; }));
}

std::vector<std::size_t> lines_of_rule(const std::vector<lint::Finding>& fs,
                                       const std::string& rule) {
  std::vector<std::size_t> lines;
  for (const lint::Finding& f : fs) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  return lines;
}

lint::LintContext plain_context() { return lint::LintContext{}; }

lint::LintContext vocab_context() {
  lint::LintContext ctx;
  ctx.vocabulary = {"sweep.points.total", "solver.<backend>.points",
                    "sweep.point.seconds"};
  return ctx;
}

// --- raw-file-io -----------------------------------------------------------

TEST(LintRawFileIo, FiresOnEveryRawPrimitiveInsideTheZone) {
  const auto findings = lint::lint_file(
      "src/dist/fixture.cpp", read_fixture("raw_file_io_fail.cpp"),
      plain_context());
  EXPECT_EQ(lines_of_rule(findings, "raw-file-io"),
            (std::vector<std::size_t>{8, 10, 12}));
}

TEST(LintRawFileIo, ZoneIsPathScoped) {
  // The identical content outside src/dist//src/obs//disk_cache is legal:
  // only the queue/cache/observability protocols need atomic publication.
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", read_fixture("raw_file_io_fail.cpp"),
      plain_context());
  EXPECT_EQ(count_rule(findings, "raw-file-io"), 0u);
}

TEST(LintRawFileIo, AtomicHelpersAndReadsPass) {
  const auto findings = lint::lint_file(
      "src/dist/fixture.cpp", read_fixture("raw_file_io_pass.cpp"),
      plain_context());
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

TEST(LintRawFileIo, InlineAndCommentBlockSuppressionsSilence) {
  const auto findings = lint::lint_file(
      "src/obs/fixture.cpp", read_fixture("raw_file_io_suppressed.cpp"),
      plain_context());
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

// --- nondeterminism --------------------------------------------------------

TEST(LintNondeterminism, FiresOnEntropyAndWallClockSources) {
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", read_fixture("nondeterminism_fail.cpp"),
      plain_context());
  // random_device, rand, srand, system_clock, std::time, clock.
  EXPECT_EQ(lines_of_rule(findings, "nondeterminism"),
            (std::vector<std::size_t>{10, 12, 13, 15, 16, 17}));
}

TEST(LintNondeterminism, SteadyClockAndMtimeClockAreExempt) {
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", read_fixture("nondeterminism_pass.cpp"),
      plain_context());
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

// --- stream-output ---------------------------------------------------------

TEST(LintStreamOutput, FiresOnTerminalWritesFromLibraryCode) {
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", read_fixture("stream_output_fail.cpp"),
      plain_context());
  EXPECT_EQ(lines_of_rule(findings, "stream-output"),
            (std::vector<std::size_t>{7, 8, 9, 10, 11}));
}

TEST(LintStreamOutput, CallerStreamsAndSnprintfPass) {
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", read_fixture("stream_output_pass.cpp"),
      plain_context());
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

// --- metric-vocabulary -----------------------------------------------------

TEST(LintMetricVocabulary, FiresOnNamesOutsideTheVocabulary) {
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", read_fixture("metric_vocab_fail.cpp"),
      vocab_context());
  EXPECT_EQ(lines_of_rule(findings, "metric-vocabulary"),
            (std::vector<std::size_t>{10, 11}));
}

TEST(LintMetricVocabulary, DocumentedNamesPlaceholdersAndConcatsPass) {
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", read_fixture("metric_vocab_pass.cpp"),
      vocab_context());
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

TEST(LintMetricVocabulary, EmptyVocabularyIsLoudNotSilent) {
  // With no README block every literal metric name is reported — a
  // missing vocabulary must not read as "everything documented".
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", read_fixture("metric_vocab_pass.cpp"),
      plain_context());
  EXPECT_EQ(count_rule(findings, "metric-vocabulary"), 3u);
}

// --- include-hygiene -------------------------------------------------------

TEST(LintIncludeHygiene, FiresOnKitchenSinkAndRelativePaths) {
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", read_fixture("include_hygiene_fail.cpp"),
      plain_context());
  EXPECT_EQ(lines_of_rule(findings, "include-hygiene"),
            (std::vector<std::size_t>{3, 4, 5}));
}

TEST(LintIncludeHygiene, RootRelativeIncludesPass) {
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", read_fixture("include_hygiene_pass.cpp"),
      plain_context());
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

TEST(LintIncludeHygiene, ResolutionCheckUsesTheRealSrcRoot) {
  lint::LintContext ctx;
  ctx.src_root = (fs::path(ESCHED_REPO_ROOT) / "src").string();
  const std::string good = "#include \"common/error.hpp\"\n";
  EXPECT_TRUE(lint::lint_file("src/core/a.cpp", good, ctx).empty());
  const std::string bad = "#include \"common/no_such_header.hpp\"\n";
  const auto findings = lint::lint_file("src/core/a.cpp", bad, ctx);
  EXPECT_EQ(count_rule(findings, "include-hygiene"), 1u);
}

// --- header-guard ----------------------------------------------------------

TEST(LintHeaderGuard, FiresWhenPragmaOnceIsNotTheFirstCodeLine) {
  const auto findings = lint::lint_file(
      "src/core/fixture.hpp", read_fixture("header_guard_fail.hpp"),
      plain_context());
  EXPECT_EQ(count_rule(findings, "header-guard"), 1u);
  EXPECT_EQ(findings.front().line, 1u);
}

TEST(LintHeaderGuard, CommentsThenPragmaOncePasses) {
  const auto findings = lint::lint_file(
      "src/core/fixture.hpp", read_fixture("header_guard_pass.hpp"),
      plain_context());
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

TEST(LintHeaderGuard, RuleOnlyAppliesToHeaders) {
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", "int x = 0;\n", plain_context());
  EXPECT_EQ(count_rule(findings, "header-guard"), 0u);
}

// --- suppression grammar ---------------------------------------------------

TEST(LintSuppression, UnknownRuleNameIsItselfDiagnosed) {
  const auto findings = lint::lint_file(
      "src/core/fixture.cpp", read_fixture("unknown_suppression.cpp"),
      plain_context());
  EXPECT_EQ(count_rule(findings, "unknown-suppression"), 1u);
}

TEST(LintSuppression, InterveningCodeLineBreaksTheCommentBlockScope) {
  // An allow() above an unrelated code line must not leak past it to a
  // violation further down.
  const std::string content =
      "#include <iostream>\n"
      "void f() {\n"
      "  // esched-lint: allow(stream-output): covers only the next line\n"
      "  int unrelated = 0;\n"
      "  std::cout << unrelated;\n"
      "}\n";
  const auto findings =
      lint::lint_file("src/core/fixture.cpp", content, plain_context());
  EXPECT_EQ(count_rule(findings, "stream-output"), 1u);
}

TEST(LintSuppression, OneAllowCanNameSeveralRules) {
  const std::string content =
      "#include <cstdio>\n"
      "void f(int n) {\n"
      "  // esched-lint: allow(stream-output, nondeterminism): CLI-side\n"
      "  printf(\"%d %u\\n\", n, static_cast<unsigned>(rand()));\n"
      "}\n";
  const auto findings =
      lint::lint_file("src/core/fixture.cpp", content, plain_context());
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

TEST(LintSuppression, SuppressionIsPerRuleNotPerLine) {
  const std::string content =
      "#include <cstdio>\n"
      "void f(int n) {\n"
      "  // esched-lint: allow(stream-output): printf is acknowledged\n"
      "  printf(\"%u\\n\", static_cast<unsigned>(rand()) + n);\n"
      "}\n";
  const auto findings =
      lint::lint_file("src/core/fixture.cpp", content, plain_context());
  EXPECT_EQ(count_rule(findings, "stream-output"), 0u);
  EXPECT_EQ(count_rule(findings, "nondeterminism"), 1u);
}

// --- comment/string masking ------------------------------------------------

TEST(LintMasking, CommentsAndStringsNeverFire) {
  const std::string content =
      "// rand() and std::cout in a line comment\n"
      "/* fopen(\"x\") printf() in a\n"
      "   block comment spanning lines */\n"
      "const char* s = \"rand() std::cout fopen printf\";\n"
      "const char* r = R\"(std::random_device printf)\";\n";
  const auto findings =
      lint::lint_file("src/dist/fixture.cpp", content, plain_context());
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

// --- README vocabulary parsing and matching --------------------------------

TEST(LintVocabulary, ParsesTheFencedBlockSkippingCommentsAndBlanks) {
  const std::string readme =
      "# Title\n"
      "```metrics-vocabulary\n"
      "# per-backend counters\n"
      "solver.<backend>.points\n"
      "\n"
      "sweep.points.total\n"
      "```\n"
      "```text\n"
      "not.a.metric\n"
      "```\n";
  const auto vocab = lint::metric_vocabulary_from_readme(readme);
  EXPECT_EQ(vocab, (std::vector<std::string>{"solver.<backend>.points",
                                             "sweep.points.total"}));
}

TEST(LintVocabulary, RealReadmeContainsTheVocabularyBlock) {
  std::ifstream in(fs::path(ESCHED_REPO_ROOT) / "README.md");
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const auto vocab = lint::metric_vocabulary_from_readme(text.str());
  EXPECT_GE(vocab.size(), 20u);
  EXPECT_TRUE(std::find(vocab.begin(), vocab.end(), "sweep.points.total") !=
              vocab.end());
}

TEST(LintVocabulary, PlaceholderMatchesExactlyOneDotFreeSegment) {
  EXPECT_TRUE(lint::metric_name_matches("sweep.points.total",
                                        "sweep.points.total"));
  EXPECT_TRUE(lint::metric_name_matches("solver.mc.points",
                                        "solver.<backend>.points"));
  EXPECT_TRUE(lint::metric_name_matches("solver.block-gth.points",
                                        "solver.<backend>.points"));
  // A placeholder cannot span a dot, be empty, or absorb a suffix.
  EXPECT_FALSE(lint::metric_name_matches("solver.a.b.points",
                                         "solver.<backend>.points"));
  EXPECT_FALSE(lint::metric_name_matches("solver..points",
                                         "solver.<backend>.points"));
  EXPECT_FALSE(lint::metric_name_matches("solver.mc.points.extra",
                                         "solver.<backend>.points"));
  EXPECT_FALSE(lint::metric_name_matches("solver.mc.errors",
                                         "solver.<backend>.points"));
  EXPECT_FALSE(lint::metric_name_matches("sweep.points", "sweep.points.total"));
}

// --- runner + exit codes ---------------------------------------------------

class LintRunner : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() / "esched_lint_test_tree";
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "core");
    std::ofstream(root_ / "README.md")
        << "```metrics-vocabulary\nsweep.points.total\n```\n";
  }
  void TearDown() override { fs::remove_all(root_); }

  void write_src(const std::string& rel, const std::string& text) {
    std::ofstream(root_ / "src" / "core" / rel) << text;
  }

  fs::path root_;
};

TEST_F(LintRunner, CleanTreeExitsZero) {
  write_src("ok.cpp", "int f() { return 1; }\n");
  lint::Options options;
  options.root = root_.string();
  std::ostringstream out;
  EXPECT_EQ(lint::lint_main(options, out), 0);
  EXPECT_NE(out.str().find("esched-lint: clean"), std::string::npos);
}

TEST_F(LintRunner, FindingsExitOneWithFileLineRuleDiagnostics) {
  write_src("bad.cpp", "#include <iostream>\nvoid f() { std::cout << 1; }\n");
  lint::Options options;
  options.root = root_.string();
  std::ostringstream out;
  EXPECT_EQ(lint::lint_main(options, out), 1);
  EXPECT_NE(out.str().find("src/core/bad.cpp:2: [stream-output]"),
            std::string::npos);
}

TEST_F(LintRunner, MissingReadmeExitsTwo) {
  fs::remove(root_ / "README.md");
  lint::Options options;
  options.root = root_.string();
  std::ostringstream out;
  EXPECT_EQ(lint::lint_main(options, out), 2);
}

TEST_F(LintRunner, MissingPathExitsTwo) {
  lint::Options options;
  options.root = root_.string();
  options.paths = {"src/core/absent.cpp"};
  std::ostringstream out;
  EXPECT_EQ(lint::lint_main(options, out), 2);
}

TEST_F(LintRunner, ExplicitFileListScansOnlyThoseFiles) {
  write_src("bad.cpp", "#include <cstdio>\nvoid f() { puts(\"x\"); }\n");
  write_src("ok.cpp", "int f() { return 1; }\n");
  lint::Options options;
  options.root = root_.string();
  options.paths = {"src/core/ok.cpp"};
  std::ostringstream out;
  EXPECT_EQ(lint::lint_main(options, out), 0);
}

// The invariant CI enforces: the real library tree is lint-clean against
// the real README vocabulary.
TEST(LintRepo, RealSrcTreeIsClean) {
  lint::Options options;
  options.root = ESCHED_REPO_ROOT;
  const auto findings = lint::run_lint(options);
  for (const lint::Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
}  // namespace esched
