// Tests for the data-driven scenario front end: the JSON parser
// (common/json), the ScenarioSpec loader (engine/spec), round-trips of
// every built-in scenario through serialize -> parse -> expand, and the
// loader's error messages (which must name the offending field).
#include <gtest/gtest.h>

#include <fstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/spec.hpp"

namespace esched {
namespace {

/// EXPECT that `expr` throws esched::Error whose message contains `needle`.
#define EXPECT_THROWS_NAMING(expr, needle)                                \
  do {                                                                    \
    try {                                                                 \
      (void)(expr);                                                       \
      ADD_FAILURE() << "expected esched::Error naming '" << (needle)      \
                    << "'";                                               \
    } catch (const Error& e) {                                            \
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)    \
          << "message was: " << e.what();                                 \
    }                                                                     \
  } while (0)

TEST(Json, ParsesScalarsArraysObjects) {
  const JsonValue v = parse_json(
      R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": "text", "e": true},
          "f": null, "g": -2e-3})");
  EXPECT_DOUBLE_EQ(v.find("a")->as_number("a"), 1.5);
  EXPECT_EQ(v.find("b")->as_array("b").size(), 3u);
  EXPECT_EQ(v.find("c")->find("d")->as_string("d"), "text");
  EXPECT_TRUE(v.find("c")->find("e")->as_bool("e"));
  EXPECT_TRUE(v.find("f")->is_null());
  EXPECT_DOUBLE_EQ(v.find("g")->as_number("g"), -2e-3);
  EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(Json, ParsesStringEscapes) {
  const JsonValue v = parse_json(R"(["a\"b", "tab\there", "A"])");
  const auto& items = v.as_array("root");
  EXPECT_EQ(items[0].as_string("0"), "a\"b");
  EXPECT_EQ(items[1].as_string("1"), "tab\there");
  EXPECT_EQ(items[2].as_string("2"), "A");
}

TEST(Json, ErrorsCarryLineAndColumn) {
  EXPECT_THROWS_NAMING(parse_json("{\n  \"a\": nope\n}", "spec.json"),
                       "spec.json:2");
  EXPECT_THROWS_NAMING(parse_json("[1, 2,]"), "invalid");
  EXPECT_THROWS_NAMING(parse_json("{\"a\": 1} trailing"), "trailing");
  EXPECT_THROWS_NAMING(parse_json("{\"a\": 1, \"a\": 2}"), "duplicate");
  EXPECT_THROWS_NAMING(parse_json(""), "end of input");
  EXPECT_THROWS_NAMING(parse_json(R"(["\ud83d\ude00"])"), "surrogate");
  EXPECT_THROWS_NAMING(parse_json(std::string(100000, '[')), "nesting");
}

TEST(Json, NumberSerializationRoundTripsBitwise) {
  for (const double value :
       {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 1e-300, 6.02e23, 0.7,
        0.1234567890123456789, 2.2250738585072014e-308}) {
    const std::string text = json_number_to_string(value);
    const JsonValue parsed = parse_json(text);
    EXPECT_EQ(parsed.as_number("n"), value) << text;
  }
}

TEST(Json, DumpParseRoundTrip) {
  const std::string text =
      R"({"name": "x", "values": [1, 0.25, true, "s"], "nested": {"k": []}})";
  const JsonValue v = parse_json(text);
  const JsonValue again = parse_json(v.dump());
  EXPECT_EQ(again.find("values")->as_array("values").size(), 4u);
  EXPECT_EQ(v.dump(), again.dump());
}

TEST(Spec, EveryBuiltinRoundTripsThroughSerializeParseExpand) {
  for (const auto& name : builtin_scenario_names()) {
    const Scenario original = builtin_scenario(name);
    const std::string text = scenario_to_json(original).dump();
    const Scenario reparsed = parse_scenario_text(text, name + ".json");
    EXPECT_EQ(reparsed.name, original.name) << name;
    EXPECT_EQ(reparsed.view, original.view) << name;
    EXPECT_EQ(reparsed.num_points(), original.num_points()) << name;
    const auto points_a = original.expand();
    const auto points_b = reparsed.expand();
    ASSERT_EQ(points_a.size(), points_b.size()) << name;
    for (std::size_t n = 0; n < points_a.size(); ++n) {
      // Cache keys cover params + policy + solver + live options in
      // round-trippable decimal form: equal keys == equal points.
      EXPECT_EQ(points_a[n].cache_key(), points_b[n].cache_key())
          << name << " point " << n;
    }
  }
}

TEST(Spec, RangeAxisMatchesBuiltinMuGridBitwise) {
  // The paper's 0.25-step grid authored as a range must reproduce the
  // fig5 builtin's axis values bitwise (same accumulation loop).
  const Scenario ranged = parse_scenario_text(
      R"({"name": "g", "axes": {"mu_i": {"from": 0.25, "to": 3.5,
          "step": 0.25}}})",
      "test");
  const Scenario fig5 = builtin_scenario("fig5");
  ASSERT_EQ(ranged.mu_i_values.size(), fig5.mu_i_values.size());
  for (std::size_t n = 0; n < ranged.mu_i_values.size(); ++n) {
    EXPECT_EQ(ranged.mu_i_values[n], fig5.mu_i_values[n]);
  }
}

TEST(Spec, UserSpecReproducesFig5Points) {
  // A hand-authored spec (the README example) expands to the same run
  // points as the built-in fig5 scenario — no recompile needed.
  const std::string text = R"({
    "name": "my-fig5",
    "view": "vs-mu",
    "axes": {
      "k": [4],
      "rho": [0.5, 0.7, 0.9],
      "mu_i": {"from": 0.25, "to": 3.5, "step": 0.25},
      "mu_e": [1],
      "policy": ["IF", "EF"],
      "solver": ["qbd"]
    }
  })";
  const Scenario user = parse_scenario_text(text, "my_fig5.json");
  const auto user_points = user.expand();
  const auto builtin_points = builtin_scenario("fig5").expand();
  ASSERT_EQ(user_points.size(), builtin_points.size());
  for (std::size_t n = 0; n < user_points.size(); ++n) {
    EXPECT_EQ(user_points[n].cache_key(), builtin_points[n].cache_key());
  }
}

TEST(Spec, LoadScenarioFileReadsDisk) {
  const std::string path = testing::TempDir() + "spec_load_test.json";
  {
    std::ofstream out(path);
    out << R"({"name": "from-disk", "axes": {"rho": [0.5]}})";
  }
  const Scenario s = load_scenario_file(path);
  EXPECT_EQ(s.name, "from-disk");
  EXPECT_EQ(s.rho_values, std::vector<double>({0.5}));
  std::remove(path.c_str());
  EXPECT_THROWS_NAMING(load_scenario_file(path), path);
}

TEST(Spec, UnknownKeysAreNamed) {
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"nmae": "typo"})", "t"), "nmae");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"axes": {"mu": [1]}})", "t"), "mu");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"options": {"sim_job": 5}})", "t"), "sim_job");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"cases": [{"mu_i": 1, "mu_e": 1, "rho": 0.5,
                             "kk": 4}]})", "t"),
      "kk");
}

TEST(Spec, NonNumericAxisValuesAreNamedWithIndex) {
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"axes": {"rho": [0.5, "high"]}})", "t"),
      "axes.rho[1]");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"axes": {"k": [2.5]}})", "t"), "axes.k[0]");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"axes": {"fit_order": [4]}})", "t"),
      "axes.fit_order[0]");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"axes": {"policy": ["IF", "Bogus"]}})", "t"),
      "axes.policy[1]");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(
          R"({"axes": {"size_dist": ["exp", "erlang:-2"]}})", "t"),
      "axes.size_dist[1]");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"axes": {"solver": ["qbd", "fancy"]}})", "t"),
      "axes.solver[1]");
}

TEST(Spec, EmptyGridsAreRejected) {
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"axes": {"rho": []}})", "t"), "axes.rho");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"axes": {"policy": []}})", "t"), "axes.policy");
  EXPECT_THROWS_NAMING(parse_scenario_text(R"({"cases": []})", "t"), "cases");
}

TEST(Spec, SemanticErrorsAreNamed) {
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"name": "u", "axes": {"rho": [1.2]}})", "t"),
      "rho");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(
          R"({"axes": {"rho": {"from": 1, "to": 0.5, "step": 0.1}}})", "t"),
      "axes.rho");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"view": "pie-chart"})", "t"), "pie-chart");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(
          R"({"cases": [{"mu_i": 1, "mu_e": 1, "rho": 0.5}],
              "axes": {"k": [2]}})",
          "t"),
      "axes.k");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"cases": [{"mu_i": 1, "rho": 0.5}]})", "t"),
      "cases[0]");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(
          R"({"options": {"truncation_epsilon": 2}})", "t"),
      "truncation_epsilon");
}

TEST(Spec, TruncationAndFitAxesParse) {
  const Scenario s = parse_scenario_text(
      R"({"name": "axes", "axes": {
            "truncation": [10, 20], "fit_order": [1, 2, 3],
            "policy": ["IF"], "solver": ["exact", "qbd"]}})",
      "t");
  EXPECT_EQ(s.trunc_values, std::vector<long>({10, 20}));
  EXPECT_EQ(s.fit_orders, std::vector<int>({1, 2, 3}));
  EXPECT_EQ(s.num_points(), 1u * 2u * 3u * 1u * 2u);
}

TEST(Spec, ExactMethodOptionParsesRoundTripsAndRejectsTypos) {
  const Scenario s = parse_scenario_text(
      R"({"name": "m", "axes": {"solver": ["exact"]},
          "options": {"method": "block"}})",
      "t");
  EXPECT_EQ(s.options.exact_method, StationaryMethod::kBlock);
  // Non-auto methods appear in the serialized spec; auto is omitted so
  // pre-existing specs print byte-identically.
  EXPECT_NE(scenario_to_json(s).dump().find("\"method\": \"block\""),
            std::string::npos);
  Scenario def = s;
  def.options.exact_method = StationaryMethod::kAuto;
  EXPECT_EQ(scenario_to_json(def).dump().find("method"), std::string::npos);
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"options": {"method": "cholesky"}})", "t"),
      "options.method");
}

TEST(Spec, ExactMethodEntersCacheKeyOnlyWhenNotAuto) {
  RunPoint point{SystemParams::from_load(2, 1.0, 1.0, 0.5), "IF",
                 SolverKind::kExactCtmc, {}};
  point.options.imax = point.options.jmax = 20;
  const std::string auto_key = point.cache_key();
  EXPECT_EQ(auto_key.find("method"), std::string::npos);
  point.options.exact_method = StationaryMethod::kSor;
  const std::string sor_key = point.cache_key();
  EXPECT_NE(sor_key.find(";method=sor"), std::string::npos);
  EXPECT_NE(auto_key, sor_key);
  // Solvers that never read the option are insensitive to it.
  point.solver = SolverKind::kQbdAnalysis;
  const std::string qbd_sor = point.cache_key();
  point.options.exact_method = StationaryMethod::kAuto;
  EXPECT_EQ(point.cache_key(), qbd_sor);
}

}  // namespace
}  // namespace esched
