// Tests for the gated runtime invariant layer (common/invariants).
// The check functions exist in every build type, so the good/bad input
// behavior is tested unconditionally; the solver-boundary wiring through
// ESCHED_DEBUG_CHECK only fires in -DESCHED_DEBUG_INVARIANTS=ON builds
// (the sanitizer CI jobs), so those assertions are gated on enabled().
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/invariants.hpp"
#include "linalg/csr.hpp"
#include "linalg/matrix.hpp"
#include "markov/stationary.hpp"

namespace esched {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Off-diagonal rates of the 2-state chain 0 <-> 1 (rates 2 and 3).
CsrMatrix two_state_rates() {
  return CsrMatrix::from_triplets(2, 2, {{0, 1, 2.0}, {1, 0, 3.0}});
}

TEST(Require, OnlyFalseThrowsAndNamesTheSite) {
  EXPECT_NO_THROW(invariants::require(true, "here", "fine"));
  try {
    invariants::require(false, "claim_chunk", "chunk index out of range");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("debug invariant violated"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("claim_chunk"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("chunk index"), std::string::npos);
  }
}

TEST(CheckGenerator, ConservativeSplitGeneratorPasses) {
  EXPECT_NO_THROW(invariants::check_generator(two_state_rates(), {2.0, 3.0},
                                              "test"));
}

TEST(CheckGenerator, AccumulationRoundoffIsTolerated) {
  const double drift = 3.0 * (1.0 + 1e-12);
  EXPECT_NO_THROW(invariants::check_generator(two_state_rates(), {2.0, drift},
                                              "test"));
}

TEST(CheckGenerator, RejectsStructuralViolations) {
  const CsrMatrix rates = two_state_rates();
  // Not square.
  const CsrMatrix rect = CsrMatrix::from_triplets(2, 3, {{0, 2, 1.0}});
  EXPECT_THROW(invariants::check_generator(rect, {1.0, 0.0}, "t"), Error);
  // Exit-rate dimension mismatch.
  EXPECT_THROW(invariants::check_generator(rates, {2.0}, "t"), Error);
  // Diagonal entry stored in the off-diagonal matrix.
  const CsrMatrix diag =
      CsrMatrix::from_triplets(2, 2, {{0, 0, -2.0}, {0, 1, 2.0}, {1, 0, 3.0}});
  EXPECT_THROW(invariants::check_generator(diag, {0.0, 3.0}, "t"), Error);
  // Negative and non-finite rates.
  const CsrMatrix neg =
      CsrMatrix::from_triplets(2, 2, {{0, 1, -2.0}, {1, 0, 3.0}});
  EXPECT_THROW(invariants::check_generator(neg, {-2.0, 3.0}, "t"), Error);
  const CsrMatrix nan =
      CsrMatrix::from_triplets(2, 2, {{0, 1, kNan}, {1, 0, 3.0}});
  EXPECT_THROW(invariants::check_generator(nan, {kNan, 3.0}, "t"), Error);
  // Negative exit rate.
  EXPECT_THROW(invariants::check_generator(rates, {2.0, -3.0}, "t"), Error);
  // Non-conservative row: rate mass leaks (exit != row sum).
  EXPECT_THROW(invariants::check_generator(rates, {2.5, 3.0}, "t"), Error);
}

TEST(CheckGeneratorDense, ConservativeGeneratorPasses) {
  Matrix q(2, 2);
  q(0, 0) = -2.0;
  q(0, 1) = 2.0;
  q(1, 0) = 3.0;
  q(1, 1) = -3.0;
  EXPECT_NO_THROW(invariants::check_generator_dense(q, "test"));
}

TEST(CheckGeneratorDense, RejectsSignAndConservationViolations) {
  Matrix pos_diag(1, 1);
  pos_diag(0, 0) = 1.0;
  EXPECT_THROW(invariants::check_generator_dense(pos_diag, "t"), Error);

  Matrix neg_off(2, 2);
  neg_off(0, 0) = 1e-3;  // also forces the row-sum check ordering
  neg_off(0, 1) = -1e-3;
  EXPECT_THROW(invariants::check_generator_dense(neg_off, "t"), Error);

  Matrix leaky(2, 2);
  leaky(0, 0) = -2.0;
  leaky(0, 1) = 1.0;  // row sums to -1, not 0
  leaky(1, 0) = 3.0;
  leaky(1, 1) = -3.0;
  EXPECT_THROW(invariants::check_generator_dense(leaky, "t"), Error);

  Matrix nan(1, 1);
  nan(0, 0) = kNan;
  EXPECT_THROW(invariants::check_generator_dense(nan, "t"), Error);
}

TEST(CheckProbabilityVector, NormalizedVectorPasses) {
  EXPECT_NO_THROW(invariants::check_probability_vector({0.25, 0.75}, "test"));
  // Roundoff-negative entries are tolerated; genuine negative mass is not.
  EXPECT_NO_THROW(
      invariants::check_probability_vector({1.0 + 1e-13, -1e-13}, "test"));
}

TEST(CheckProbabilityVector, RejectsBadMass) {
  EXPECT_THROW(invariants::check_probability_vector({}, "t"), Error);
  EXPECT_THROW(invariants::check_probability_vector({0.5, kNan}, "t"), Error);
  EXPECT_THROW(invariants::check_probability_vector({1.000001, -1e-6}, "t"),
               Error);
  EXPECT_THROW(invariants::check_probability_vector({0.5, 0.4}, "t"), Error);
}

TEST(CheckCsr, FromTripletsAndTransposeSatisfyTheContract) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      3, 3, {{2, 0, 1.0}, {0, 2, 2.0}, {0, 1, 3.0}, {1, 1, 4.0}});
  EXPECT_NO_THROW(invariants::check_csr(m, "test"));
  EXPECT_NO_THROW(invariants::check_csr(m.transposed(), "test"));
}

TEST(CheckCsr, EmptyMatrixSatisfiesTheContract) {
  // A default-constructed 0 x 0 matrix carries row_ptr == {0}: one offset
  // covering zero rows. Every public constructor maintains the contract —
  // the check exists to catch internal corruption, not reachable states.
  EXPECT_NO_THROW(invariants::check_csr(CsrMatrix(), "test"));
  EXPECT_NO_THROW(
      invariants::check_csr(CsrMatrix::from_triplets(2, 2, {}), "test"));
}

TEST(DebugCheckMacro, CompilesInBothModesAndFiresOnlyWhenEnabled) {
  // Always compiles; a no-op unless the build defines the option.
  ESCHED_DEBUG_CHECK(require(true, "macro", "no-op"));
  if constexpr (invariants::enabled()) {
    EXPECT_THROW(ESCHED_DEBUG_CHECK(require(false, "macro", "fires")), Error);
  } else {
    EXPECT_NO_THROW(ESCHED_DEBUG_CHECK(require(false, "macro", "inactive")));
  }
}

TEST(SolverWiring, BadGeneratorIsRejectedAtTheSolverBoundaryWhenEnabled) {
  // gth/sor entry points carry ESCHED_DEBUG_CHECK(check_generator(...)):
  // a non-conservative split generator must be rejected before the solve
  // in invariant builds (the sanitizer CI jobs run this arm).
  if constexpr (invariants::enabled()) {
    const CsrMatrix rates = two_state_rates();
    const Vector leaky_exits = {2.5, 3.0};
    EXPECT_THROW(gth_stationary(rates, leaky_exits), Error);
    EXPECT_THROW(sor_stationary(rates, leaky_exits), Error);
  }
}

TEST(SolverWiring, SolverOutputsSatisfyTheProbabilityContract) {
  // End-to-end: a real solve's output passes the same check the solvers
  // apply to themselves in invariant builds.
  const Vector pi = gth_stationary(two_state_rates(), {2.0, 3.0});
  EXPECT_NO_THROW(invariants::check_probability_vector(pi, "test"));
  EXPECT_NEAR(pi[0], 0.6, 1e-12);
  EXPECT_NEAR(pi[1], 0.4, 1e-12);
}

}  // namespace
}  // namespace esched
