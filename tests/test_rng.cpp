// Unit tests for the RNG substrate: reproducibility, stream independence,
// and the statistical sanity of the samplers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/accumulator.hpp"

namespace esched {
namespace {

TEST(Xoshiro, IsDeterministicGivenSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int n = 0; n < 1000; ++n) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int n = 0; n < 100; ++n) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, JumpedStreamsDoNotCollide) {
  Xoshiro256 base(7);
  Xoshiro256 s1 = base.stream(1);
  Xoshiro256 s2 = base.stream(2);
  int same = 0;
  for (int n = 0; n < 1000; ++n) {
    if (s1() == s2()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Distributions, UniformOpen01InRange) {
  Xoshiro256 rng(3);
  for (int n = 0; n < 100000; ++n) {
    const double u = uniform_open01(rng);
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(Distributions, UniformMeanAndBounds) {
  Xoshiro256 rng(4);
  Accumulator acc;
  for (int n = 0; n < 200000; ++n) {
    const double x = uniform(rng, 2.0, 6.0);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 6.0);
    acc.add(x);
  }
  EXPECT_NEAR(acc.mean(), 4.0, 0.02);
  // Var of U(2,6) is 16/12.
  EXPECT_NEAR(acc.variance(), 16.0 / 12.0, 0.02);
}

TEST(Distributions, ExponentialMomentsMatch) {
  Xoshiro256 rng(5);
  const double rate = 2.5;
  MomentAccumulator acc;
  for (int n = 0; n < 400000; ++n) acc.add(exponential(rng, rate));
  EXPECT_NEAR(acc.raw_moment(1), 1.0 / rate, 3e-3);
  EXPECT_NEAR(acc.raw_moment(2), 2.0 / (rate * rate), 5e-3);
  EXPECT_NEAR(acc.raw_moment(3), 6.0 / (rate * rate * rate), 2e-2);
}

TEST(Distributions, ExponentialRejectsBadRate) {
  Xoshiro256 rng(6);
  EXPECT_THROW(exponential(rng, 0.0), Error);
  EXPECT_THROW(exponential(rng, -1.0), Error);
}

TEST(Distributions, BernoulliFrequency) {
  Xoshiro256 rng(7);
  int hits = 0;
  const int trials = 200000;
  for (int n = 0; n < trials; ++n) {
    if (bernoulli(rng, 0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 5e-3);
}

TEST(Distributions, DiscreteRespectsWeights) {
  Xoshiro256 rng(8);
  const std::vector<double> weights = {1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  const int trials = 300000;
  for (int n = 0; n < trials; ++n) ++counts[discrete(rng, weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 5e-3);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.2, 5e-3);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.7, 5e-3);
}

TEST(Distributions, DiscreteRejectsDegenerateWeights) {
  Xoshiro256 rng(9);
  EXPECT_THROW(discrete(rng, {}), Error);
  EXPECT_THROW(discrete(rng, {0.0, 0.0}), Error);
  EXPECT_THROW(discrete(rng, {-1.0, 2.0}), Error);
}

TEST(Distributions, UniformIndexIsUnbiased) {
  Xoshiro256 rng(10);
  std::vector<int> counts(5, 0);
  const int trials = 250000;
  for (int n = 0; n < trials; ++n) ++counts[uniform_index(rng, 5)];
  for (int v = 0; v < 5; ++v) {
    EXPECT_NEAR(counts[v] / static_cast<double>(trials), 0.2, 5e-3);
  }
}

}  // namespace
}  // namespace esched
