// Tests for the job-level and state-level simulators: closed-form M/M/1 /
// M/M/k sanity, agreement with the analysis, Little's law, invariant
// checking, and the phase-type size extension.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "core/ef_analysis.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "queueing/mm1.hpp"
#include "queueing/mmk.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/ctmc_sim.hpp"

namespace esched {
namespace {

SimOptions fast_sim(std::uint64_t seed = 1) {
  SimOptions opt;
  opt.num_jobs = 120000;
  opt.warmup_jobs = 12000;
  opt.seed = seed;
  return opt;
}

TEST(ClusterSim, PureElasticIsMM1) {
  // Only elastic traffic under EF: the whole system is an M/M/1 with
  // service rate k mu_E.
  SystemParams p;
  p.k = 4;
  p.lambda_i = 0.0;
  p.lambda_e = 2.8;
  p.mu_i = 1.0;
  p.mu_e = 1.0;  // rho = 0.7
  SimOptions opt = fast_sim();
  opt.num_jobs = 250000;  // rho = 0.7 M/M/1 response times are long-range
  opt.warmup_jobs = 25000;  // correlated; more data tightens the estimate
  const SimResult r = simulate(p, ElasticFirst{}, opt);
  const MM1 ref(p.lambda_e, 4.0);
  EXPECT_LT(relative_error(r.mean_response_time.mean,
                           ref.mean_response_time()),
            0.05);
  EXPECT_LT(relative_error(r.mean_jobs_e, ref.mean_jobs()), 0.05);
}

TEST(ClusterSim, PureInelasticIsMMk) {
  SystemParams p;
  p.k = 4;
  p.lambda_i = 2.8;
  p.lambda_e = 0.0;
  p.mu_i = 1.0;
  p.mu_e = 1.0;
  const SimResult r = simulate(p, InelasticFirst{}, fast_sim(2));
  const MMk ref(p.lambda_i, p.mu_i, p.k);
  EXPECT_LT(relative_error(r.mean_response_time.mean,
                           ref.mean_response_time()),
            0.03);
}

TEST(ClusterSim, LittlesLawHolds) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const SimResult r = simulate(p, InelasticFirst{}, fast_sim(3));
  const double n_from_little =
      (p.lambda_i + p.lambda_e) * r.mean_response_time.mean;
  EXPECT_LT(relative_error(n_from_little, r.mean_jobs_i + r.mean_jobs_e),
            0.03);
}

TEST(ClusterSim, MatchesIfAnalysis) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const double analytic = analyze_inelastic_first(p).mean_response_time;
  const SimResult r = simulate(p, InelasticFirst{}, fast_sim(4));
  EXPECT_LT(relative_error(r.mean_response_time.mean, analytic), 0.03);
}

TEST(ClusterSim, MatchesEfAnalysis) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const double analytic = analyze_elastic_first(p).mean_response_time;
  const SimResult r = simulate(p, ElasticFirst{}, fast_sim(5));
  EXPECT_LT(relative_error(r.mean_response_time.mean, analytic), 0.03);
}

TEST(ClusterSim, UtilizationMatchesLoad) {
  // In steady state the served work rate must equal the arriving work rate
  // rho (per server).
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.6);
  const SimResult r = simulate(p, InelasticFirst{}, fast_sim(6));
  EXPECT_NEAR(r.utilization, 0.6, 0.02);
}

TEST(ClusterSim, InvariantCheckingRuns) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.5);
  SimOptions opt = fast_sim(7);
  opt.num_jobs = 20000;
  opt.warmup_jobs = 2000;
  opt.check_invariants = true;
  EXPECT_NO_THROW(simulate(p, FairShare{}, opt));
}

TEST(ClusterSim, SeedsChangeRealizationNotMean) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.5);
  const SimResult a = simulate(p, InelasticFirst{}, fast_sim(10));
  const SimResult b = simulate(p, InelasticFirst{}, fast_sim(11));
  EXPECT_NE(a.mean_response_time.mean, b.mean_response_time.mean);
  EXPECT_LT(relative_error(a.mean_response_time.mean,
                           b.mean_response_time.mean),
            0.05);
}

TEST(ClusterSim, DeterministicGivenSeed) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.5);
  SimOptions opt = fast_sim(12);
  opt.num_jobs = 20000;
  opt.warmup_jobs = 1000;
  const SimResult a = simulate(p, InelasticFirst{}, opt);
  const SimResult b = simulate(p, InelasticFirst{}, opt);
  EXPECT_DOUBLE_EQ(a.mean_response_time.mean, b.mean_response_time.mean);
  EXPECT_DOUBLE_EQ(a.sim_time, b.sim_time);
}

TEST(ClusterSim, PhaseTypeSizesChangeTheAnswer) {
  // Extension: hyperexponential elastic sizes with the same mean increase
  // variability; mean response time under EF must still be finite and the
  // simulator must honor the distribution's mean (arrival work balance).
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.6);
  const PhaseType hyper =
      PhaseType::hyperexponential({0.9, 0.1}, {9.0 / 5.0, 1.0 / 5.0});
  ASSERT_NEAR(hyper.mean(), 1.0, 1e-12);  // same mean as Exp(mu_e = 1)
  SimOptions opt = fast_sim(13);
  opt.size_dist_e = &hyper;
  const SimResult r = simulate(p, InelasticFirst{}, opt);
  EXPECT_NEAR(r.utilization, 0.6, 0.03);
  EXPECT_GT(r.mean_response_time.mean, 0.0);
}

TEST(ClusterSim, RejectsNoArrivals) {
  SystemParams p;
  p.k = 2;
  p.mu_i = 1.0;
  p.mu_e = 1.0;
  EXPECT_THROW(simulate(p, InelasticFirst{}, fast_sim()), Error);
}

TEST(CtmcSim, AgreesWithJobLevelSimulator) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  CtmcSimOptions copt;
  copt.horizon = 300000.0;
  copt.warmup = 30000.0;
  copt.seed = 21;
  const CtmcSimResult fast = simulate_ctmc(p, InelasticFirst{}, copt);
  const SimResult slow = simulate(p, InelasticFirst{}, fast_sim(22));
  EXPECT_LT(relative_error(fast.mean_response_time,
                           slow.mean_response_time.mean),
            0.04);
}

TEST(CtmcSim, MatchesAnalysis) {
  const SystemParams p = SystemParams::from_load(4, 2.0, 1.0, 0.8);
  CtmcSimOptions copt;
  copt.horizon = 400000.0;
  copt.warmup = 40000.0;
  copt.seed = 23;
  const CtmcSimResult r = simulate_ctmc(p, InelasticFirst{}, copt);
  const double analytic = analyze_inelastic_first(p).mean_response_time;
  EXPECT_LT(relative_error(r.mean_response_time, analytic), 0.04);
}

TEST(CtmcSim, RejectsBadHorizon) {
  const SystemParams p = SystemParams::from_load(2, 1.0, 1.0, 0.5);
  CtmcSimOptions copt;
  copt.horizon = 10.0;
  copt.warmup = 20.0;
  EXPECT_THROW(simulate_ctmc(p, InelasticFirst{}, copt), Error);
}

}  // namespace
}  // namespace esched
