// Tests for the M/G/1 Pollaczek-Khinchine module, including the library's
// real use for it: under EF, the elastic class with phase-type sizes is an
// M/G/1 at speed k, validated against the job-level simulator.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "core/params.hpp"
#include "core/policies.hpp"
#include "phase/phase_type.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mm1.hpp"
#include "sim/cluster_sim.hpp"

namespace esched {
namespace {

TEST(MG1, ReducesToMM1ForExponentialService) {
  const double lambda = 0.7;
  const double mu = 1.3;
  const MG1 general(lambda, 1.0 / mu, 2.0 / (mu * mu));
  const MM1 markov(lambda, mu);
  EXPECT_NEAR(general.mean_response_time(), markov.mean_response_time(),
              1e-12);
  EXPECT_NEAR(general.mean_wait(), markov.mean_wait(), 1e-12);
  EXPECT_NEAR(general.mean_jobs(), markov.mean_jobs(), 1e-12);
}

TEST(MG1, PhaseTypeConstructorUsesMoments) {
  const PhaseType service = PhaseType::erlang(4, 4.0);  // mean 1, scv 1/4
  const MG1 q(0.5, service);
  EXPECT_NEAR(q.s1, 1.0, 1e-12);
  EXPECT_NEAR(q.s2, service.raw_moment(2), 1e-12);
}

TEST(MG1, SpeedScalesService) {
  const PhaseType service = PhaseType::exponential(1.0);
  const MG1 slow(0.5, service, 1.0);
  const MG1 fast(0.5, service, 2.0);
  EXPECT_NEAR(fast.s1, slow.s1 / 2.0, 1e-12);
  EXPECT_LT(fast.mean_response_time(), slow.mean_response_time());
}

TEST(MG1, LowerVariabilityMeansLessWaiting) {
  // Same mean service, utilization 0.8: deterministic-ish (Erlang) waits
  // half as long as exponential; hyperexponential waits longer.
  const double lambda = 0.8;
  const MG1 erlang(lambda, PhaseType::erlang(8, 8.0));
  const MG1 expo(lambda, PhaseType::exponential(1.0));
  const MG1 hyper(lambda,
                  PhaseType::hyperexponential({0.9, 0.1}, {1.8, 0.2}));
  EXPECT_LT(erlang.mean_wait(), expo.mean_wait());
  EXPECT_GT(hyper.mean_wait(), expo.mean_wait());
  // PK ratio for Erlang-8: (1 + 1/8)/2 of the exponential wait.
  EXPECT_NEAR(erlang.mean_wait() / expo.mean_wait(), (1.0 + 1.0 / 8.0) / 2.0,
              1e-9);
}

TEST(MG1, UnstableAndInvalidInputsThrow) {
  EXPECT_THROW(MG1(2.0, 1.0, 2.0).mean_wait(), Error);
  EXPECT_THROW(MG1(0.5, 0.0, 1.0), Error);
  EXPECT_THROW(MG1(0.5, 1.0, 0.5), Error);  // E[S^2] < E[S]^2
}

TEST(MG1, MatchesSimulatedElasticClassUnderEF) {
  // EF with only elastic traffic and hyperexponential sizes: the system is
  // an M/G/1 with service S/k.
  SystemParams p;
  p.k = 4;
  p.lambda_i = 0.0;
  p.lambda_e = 2.4;
  p.mu_i = 1.0;
  p.mu_e = 1.0;
  const PhaseType sizes =
      PhaseType::hyperexponential({0.8, 0.2}, {1.6, 0.4});
  ASSERT_NEAR(sizes.mean(), 1.0, 1e-12);

  const MG1 reference(p.lambda_e, sizes, 4.0);
  SimOptions opt;
  opt.num_jobs = 200000;
  opt.warmup_jobs = 20000;
  opt.seed = 88;
  opt.size_dist_e = &sizes;
  const SimResult sim = simulate(p, ElasticFirst{}, opt);
  EXPECT_LT(relative_error(sim.mean_response_time.mean,
                           reference.mean_response_time()),
            0.05);
}

TEST(MG1, MatchesSimulatedErlangServiceToo) {
  SystemParams p;
  p.k = 2;
  p.lambda_i = 0.0;
  p.lambda_e = 1.2;
  p.mu_i = 1.0;
  p.mu_e = 1.0;
  const PhaseType sizes = PhaseType::erlang(3, 3.0);  // mean 1, scv 1/3
  const MG1 reference(p.lambda_e, sizes, 2.0);
  SimOptions opt;
  opt.num_jobs = 150000;
  opt.warmup_jobs = 15000;
  opt.seed = 89;
  opt.size_dist_e = &sizes;
  const SimResult sim = simulate(p, ElasticFirst{}, opt);
  EXPECT_LT(relative_error(sim.mean_response_time.mean,
                           reference.mean_response_time()),
            0.05);
}

}  // namespace
}  // namespace esched
