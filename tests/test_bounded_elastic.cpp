// Tests for the bounded-elasticity extension (paper §6): elastic jobs can
// use at most `elastic_cap` servers each. cap = k recovers the base model;
// smaller caps reduce the benefit of elastic priority.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/ctmc_sim.hpp"

namespace esched {
namespace {

ExactCtmcOptions truncation(const SystemParams& p) {
  ExactCtmcOptions opt;
  opt.imax = opt.jmax = suggested_truncation(p.rho(), 1e-9);
  return opt;
}

TEST(BoundedElastic, CapKEqualsUnbounded) {
  SystemParams base = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  SystemParams capped = base;
  capped.elastic_cap = 4;
  const double et_base =
      solve_exact_ctmc(base, ElasticFirst{}, truncation(base))
          .mean_response_time;
  const double et_capped =
      solve_exact_ctmc(capped, ElasticFirst{}, truncation(capped))
          .mean_response_time;
  EXPECT_NEAR(et_base, et_capped, 1e-12);
}

TEST(BoundedElastic, TighterCapHurtsPureElasticTraffic) {
  // With only elastic traffic there is no other class to absorb freed
  // servers, so shrinking the cap strictly reduces service capacity and
  // E[T] grows monotonically.
  SystemParams p;
  p.k = 4;
  p.lambda_i = 0.0;
  p.lambda_e = 2.8;  // rho = 0.7
  p.mu_i = 1.0;
  p.mu_e = 1.0;
  double prev = 0.0;
  for (int cap : {4, 3, 2, 1}) {
    p.elastic_cap = cap;
    const double et =
        solve_exact_ctmc(p, ElasticFirst{}, truncation(p))
            .mean_response_time;
    EXPECT_GE(et, prev - 1e-9) << "cap=" << cap;
    prev = et;
  }
}

TEST(BoundedElastic, CapTradesCapacityAgainstScheduling) {
  // The cap changes the SYSTEM (less usable capacity), not just the
  // policy, and the two effects pull E[T] under cap-aware EF in opposite
  // directions when mu_I = mu_E:
  //  - servers the elastic job cannot use flow to inelastic jobs, moving
  //    EF toward (optimal) IF — intermediate caps BEAT uncapped EF;
  //  - at cap = 1 the capacity loss dominates and everything gets worse.
  // Meanwhile capped IF degrades monotonically (pure capacity loss), and
  // nothing in any capped system beats uncapped IF, since every capped
  // allocation is feasible in the base model where IF is optimal (Thm 1).
  SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  const auto opt = truncation(p);
  const double et_if_full =
      solve_exact_ctmc(p, InelasticFirst{}, opt).mean_response_time;
  const double et_ef_full =
      solve_exact_ctmc(p, ElasticFirst{}, opt).mean_response_time;

  double prev_if = et_if_full;
  for (int cap : {3, 2, 1}) {
    SystemParams capped = p;
    capped.elastic_cap = cap;
    const double ef =
        solve_exact_ctmc(capped, ElasticFirst{}, opt).mean_response_time;
    const double ifp =
        solve_exact_ctmc(capped, InelasticFirst{}, opt).mean_response_time;
    // Theorem 1 floor: no capped policy beats uncapped IF.
    EXPECT_GE(ef, et_if_full - 1e-9) << "cap=" << cap;
    EXPECT_GE(ifp, et_if_full - 1e-9) << "cap=" << cap;
    // Capped IF degrades monotonically as the cap tightens.
    EXPECT_GE(ifp, prev_if - 1e-9) << "cap=" << cap;
    prev_if = ifp;
    // Scheduling gain: moderate caps improve EF relative to uncapped EF.
    if (cap >= 2) {
      EXPECT_LT(ef, et_ef_full) << "cap=" << cap;
    }
  }
  // Capacity loss dominates at cap = 1: worse than uncapped EF.
  SystemParams all_rigid = p;
  all_rigid.elastic_cap = 1;
  EXPECT_GT(solve_exact_ctmc(all_rigid, ElasticFirst{}, opt)
                .mean_response_time,
            et_ef_full);
}

TEST(BoundedElastic, CapOneMakesClassesSymmetric) {
  // With elastic_cap = 1 and mu_I = mu_E both classes are statistically
  // identical single-server jobs; IF and EF should give (nearly) the same
  // mean response time — they only differ in which identical class they
  // prioritize. (Not exactly: EF's head-of-line elastic job still gets
  // only 1 server, so both policies are M/M/k-like with priorities; the
  // OVERALL mean is the same by symmetry of the two priority orders.)
  SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.6);
  p.elastic_cap = 1;
  const auto opt = truncation(p);
  const double et_if =
      solve_exact_ctmc(p, InelasticFirst{}, opt).mean_response_time;
  // Compare against a cap-respecting EF mirror: prioritize elastic. With
  // lambda_I = lambda_E and mu_I = mu_E, swapping class roles is an exact
  // symmetry, so the two priority orders have equal overall E[T].
  const double et_ef =
      solve_exact_ctmc(p, ElasticFirst{}, opt).mean_response_time;
  EXPECT_LT(relative_error(et_if, et_ef), 1e-9);
}

TEST(BoundedElastic, SimulatorMatchesExactChain) {
  SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  p.elastic_cap = 2;
  const double exact =
      solve_exact_ctmc(p, InelasticFirst{}, truncation(p))
          .mean_response_time;
  SimOptions opt;
  opt.num_jobs = 150000;
  opt.warmup_jobs = 15000;
  opt.seed = 321;
  const SimResult sim = simulate(p, InelasticFirst{}, opt);
  EXPECT_LT(relative_error(sim.mean_response_time.mean, exact), 0.05);
}

TEST(BoundedElastic, CtmcSimulatorHonorsCap) {
  SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  p.elastic_cap = 2;
  const double exact =
      solve_exact_ctmc(p, ElasticFirst{}, truncation(p)).mean_response_time;
  CtmcSimOptions opt;
  opt.horizon = 400000.0;
  opt.warmup = 40000.0;
  opt.seed = 654;
  const CtmcSimResult sim = simulate_ctmc(p, ElasticFirst{}, opt);
  EXPECT_LT(relative_error(sim.mean_response_time, exact), 0.05);
}

TEST(BoundedElastic, AnalysesRejectBoundedCaps) {
  SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.5);
  p.elastic_cap = 2;
  EXPECT_THROW(analyze_elastic_first(p), Error);
  EXPECT_THROW(analyze_inelastic_first(p), Error);
  p.elastic_cap = 4;  // cap == k is the base model
  EXPECT_NO_THROW(analyze_elastic_first(p));
}

TEST(BoundedElastic, ValidateRejectsBadCap) {
  SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.5);
  p.elastic_cap = 5;  // > k
  EXPECT_THROW(p.validate(), Error);
  p.elastic_cap = -1;
  EXPECT_THROW(p.validate(), Error);
}

// The paper's §2 renormalization remark, applied to bounded elasticity: a
// system where elastic jobs parallelize up to c behaves like the base
// model when there is never more than one elastic job wanting more than c
// servers... at low elastic load the cap rarely binds, so capped EF
// approaches unbounded EF.
TEST(BoundedElastic, CapRarelyBindsAtLowElasticLoad) {
  SystemParams base;
  base.k = 4;
  base.mu_i = 1.0;
  base.mu_e = 1.0;
  base.lambda_i = 1.6;   // most of the load is inelastic
  base.lambda_e = 0.05;  // elastic jobs are rare
  SystemParams capped = base;
  capped.elastic_cap = 3;
  const auto opt = truncation(base);
  const double et_base =
      solve_exact_ctmc(base, InelasticFirst{}, opt).mean_response_time;
  const double et_capped =
      solve_exact_ctmc(capped, InelasticFirst{}, opt).mean_response_time;
  EXPECT_LT(relative_error(et_base, et_capped), 0.02);
}

}  // namespace
}  // namespace esched
