// Unit tests for the model parameters and the policy family: feasibility
// (the §2 constraints), work conservation, and the specific allocation
// rules of IF, EF, and the rest of class P.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/params.hpp"
#include "core/policies.hpp"

namespace esched {
namespace {

SystemParams base_params() {
  SystemParams p;
  p.k = 4;
  p.lambda_i = 1.0;
  p.lambda_e = 1.0;
  p.mu_i = 1.0;
  p.mu_e = 1.0;
  return p;
}

TEST(Params, LoadDecomposition) {
  const SystemParams p = base_params();
  EXPECT_DOUBLE_EQ(p.rho_i(), 0.25);
  EXPECT_DOUBLE_EQ(p.rho_e(), 0.25);
  EXPECT_DOUBLE_EQ(p.rho(), 0.5);
  EXPECT_TRUE(p.stable());
}

TEST(Params, FromLoadHitsTargetRho) {
  for (double rho : {0.3, 0.5, 0.7, 0.9}) {
    for (double mu_i : {0.25, 1.0, 3.25}) {
      const SystemParams p = SystemParams::from_load(4, mu_i, 1.0, rho);
      EXPECT_NEAR(p.rho(), rho, 1e-12);
      EXPECT_DOUBLE_EQ(p.lambda_i, p.lambda_e);  // the paper's convention
    }
  }
}

TEST(Params, ValidateRejectsNonsense) {
  SystemParams p = base_params();
  p.k = 0;
  EXPECT_THROW(p.validate(), Error);
  p = base_params();
  p.mu_i = 0.0;
  EXPECT_THROW(p.validate(), Error);
  p = base_params();
  p.lambda_e = -1.0;
  EXPECT_THROW(p.validate(), Error);
}

TEST(InelasticFirstPolicy, AllocationRules) {
  const SystemParams p = base_params();  // k = 4
  const InelasticFirst policy;
  // Fewer inelastic than servers: leftovers go to elastic.
  Allocation a = policy.allocate({2, 3}, p);
  EXPECT_DOUBLE_EQ(a.inelastic, 2.0);
  EXPECT_DOUBLE_EQ(a.elastic, 2.0);
  // Inelastic saturate the cluster.
  a = policy.allocate({6, 3}, p);
  EXPECT_DOUBLE_EQ(a.inelastic, 4.0);
  EXPECT_DOUBLE_EQ(a.elastic, 0.0);
  // No elastic jobs: servers beyond i stay idle.
  a = policy.allocate({2, 0}, p);
  EXPECT_DOUBLE_EQ(a.inelastic, 2.0);
  EXPECT_DOUBLE_EQ(a.elastic, 0.0);
  // Empty system.
  a = policy.allocate({0, 0}, p);
  EXPECT_DOUBLE_EQ(a.total(), 0.0);
}

TEST(ElasticFirstPolicy, AllocationRules) {
  const SystemParams p = base_params();
  const ElasticFirst policy;
  // Any elastic job grabs everything.
  Allocation a = policy.allocate({3, 1}, p);
  EXPECT_DOUBLE_EQ(a.elastic, 4.0);
  EXPECT_DOUBLE_EQ(a.inelastic, 0.0);
  // No elastic jobs: like IF.
  a = policy.allocate({6, 0}, p);
  EXPECT_DOUBLE_EQ(a.inelastic, 4.0);
  a = policy.allocate({2, 0}, p);
  EXPECT_DOUBLE_EQ(a.inelastic, 2.0);
}

TEST(FairSharePolicy, ProportionalSplit) {
  const SystemParams p = base_params();
  const FairShare policy;
  // 2 inelastic, 2 elastic: half the cluster each.
  Allocation a = policy.allocate({2, 2}, p);
  EXPECT_DOUBLE_EQ(a.inelastic, 2.0);
  EXPECT_DOUBLE_EQ(a.elastic, 2.0);
  // 1 inelastic, 3 elastic: share 1 for inelastic.
  a = policy.allocate({1, 3}, p);
  EXPECT_DOUBLE_EQ(a.inelastic, 1.0);
  EXPECT_DOUBLE_EQ(a.elastic, 3.0);
  // 8 inelastic, 8 elastic: inelastic share is k/2 = 2.
  a = policy.allocate({8, 8}, p);
  EXPECT_DOUBLE_EQ(a.inelastic, 2.0);
  EXPECT_DOUBLE_EQ(a.elastic, 2.0);
}

TEST(InelasticCapPolicy, InterpolatesBetweenEFAndIF) {
  const SystemParams p = base_params();
  const InelasticCap cap0(0);
  const InelasticCap capk(4);
  const InelasticFirst if_policy;
  const ElasticFirst ef_policy;
  for (long i = 0; i <= 6; ++i) {
    for (long j = 0; j <= 6; ++j) {
      const Allocation a0 = cap0.allocate({i, j}, p);
      const Allocation aef = ef_policy.allocate({i, j}, p);
      EXPECT_DOUBLE_EQ(a0.inelastic, aef.inelastic) << i << "," << j;
      EXPECT_DOUBLE_EQ(a0.elastic, aef.elastic) << i << "," << j;
      const Allocation ak = capk.allocate({i, j}, p);
      const Allocation aif = if_policy.allocate({i, j}, p);
      EXPECT_DOUBLE_EQ(ak.inelastic, aif.inelastic) << i << "," << j;
      EXPECT_DOUBLE_EQ(ak.elastic, aif.elastic) << i << "," << j;
    }
  }
}

TEST(Policies, AllWorkConservingMembersPassTheGridCheck) {
  const SystemParams p = base_params();
  EXPECT_TRUE(is_work_conserving(InelasticFirst{}, p));
  EXPECT_TRUE(is_work_conserving(ElasticFirst{}, p));
  EXPECT_TRUE(is_work_conserving(FairShare{}, p));
  EXPECT_TRUE(is_work_conserving(InelasticCap{2}, p));
}

TEST(Policies, IdlingPolicyIsNotWorkConserving) {
  const SystemParams p = base_params();
  const IdlingPolicy idler(make_inelastic_first(), 1.0);
  EXPECT_FALSE(is_work_conserving(idler, p));
  // But it must still be feasible everywhere.
  for (long i = 0; i <= 8; ++i) {
    for (long j = 0; j <= 8; ++j) {
      EXPECT_NO_THROW(idler.check_feasible({i, j}, p));
    }
  }
}

TEST(Policies, FeasibilityGridForAllPolicies) {
  const SystemParams p = base_params();
  const std::vector<PolicyPtr> policies = {
      make_inelastic_first(), make_elastic_first(), make_fair_share(),
      make_inelastic_cap(1), make_inelastic_cap(3)};
  for (const auto& policy : policies) {
    for (long i = 0; i <= 10; ++i) {
      for (long j = 0; j <= 10; ++j) {
        EXPECT_NO_THROW(policy->check_feasible({i, j}, p)) << policy->name();
      }
    }
  }
}

TEST(Policies, NamesAreDistinct) {
  EXPECT_EQ(make_inelastic_first()->name(), "IF");
  EXPECT_EQ(make_elastic_first()->name(), "EF");
  EXPECT_EQ(make_inelastic_cap(2)->name(), "InelasticCap(2)");
  EXPECT_EQ(make_idling(make_elastic_first(), 1.0)->name(), "Idling(EF)");
}

}  // namespace
}  // namespace esched
