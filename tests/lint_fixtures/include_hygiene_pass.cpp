// Fixture: clean includes — specific standard headers and
// src/-root-relative quoted paths. test_lint runs this with an empty
// src_root so the quoted path is only checked for ./ and ../ shapes.
#include <string>
#include <vector>
#include "common/error.hpp"

int answer() { return 42; }
