// Fixture: the approved publication path — common/atomic_file helpers.
// Reads (ifstream) are fine too: the queue protocol tolerates torn reads
// by skipping, it is only *publication* that must be atomic. Mentioning
// fopen or rename in a comment must not fire either.
#include <fstream>
#include <string>

void atomic_write_file(const std::string& path, const std::string& text);

void publish_well(const std::string& path) {
  atomic_write_file(path, "complete content\n");
  std::ifstream in(path);  // reading back is not publication
}
