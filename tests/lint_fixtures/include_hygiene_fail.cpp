// Fixture: include-hygiene violations — the kitchen-sink header and
// relative quoted paths must both fire.
#include <bits/stdc++.h>
#include "../markov/stationary.hpp"
#include "./local_helper.hpp"

int answer() { return 42; }
