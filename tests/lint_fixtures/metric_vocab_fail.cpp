// Fixture: metric names missing from the README vocabulary. test_lint
// supplies a small vocabulary; both literals below are outside it and
// must fire metric-vocabulary.
struct Registry {
  void counter(const char* name, double v);
  void gauge(const char* name, double v);
};

void record(Registry& reg) {
  reg.counter("made.up.counter", 1.0);
  reg.gauge("sweep.points.unknown_suffix", 2.0);
}
