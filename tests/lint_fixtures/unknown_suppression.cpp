// Fixture: a suppression naming a rule that does not exist must fire
// unknown-suppression (a typo here would otherwise silently disable
// nothing and rot).
#include <string>

void f() {
  std::string s;  // esched-lint: allow(no-such-rule): typo'd annotation
  (void)s;
}
