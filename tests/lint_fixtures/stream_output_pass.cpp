// Fixture: the approved idiom — caller-supplied streams and snprintf
// into a buffer. std::cerr for hard diagnostics is also tolerated, and
// the words printf/cout inside strings or comments must not fire.
#include <cstdio>
#include <iostream>
#include <ostream>

void report(std::ostream& out, int n) {
  out << "solved " << n << " points\n";  // caller decides where this goes
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", n);
  out << buf << " (formatted without printf, see comment)\n";
  std::cerr << "hard diagnostic, not std::cout\n";
}
