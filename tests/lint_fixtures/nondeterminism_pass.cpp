// Fixture: the deterministic idiom — fixed per-point seeds, steady_clock
// for durations, and the filesystem's mtime clock for lease heartbeats.
// None of these may fire nondeterminism: steady_clock and
// file_time_type::clock are exempt by design, and words like
// "randomized" are not the identifier rand.
#include <chrono>
#include <cstdint>
#include <filesystem>

std::uint64_t randomized_point_seed(std::uint64_t base, std::uint64_t index) {
  return base * 6364136223846793005ull + index;  // deterministic stream
}

double duration_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

auto heartbeat_now() {
  return std::filesystem::file_time_type::clock::now();
}
