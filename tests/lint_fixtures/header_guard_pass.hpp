// Fixture: the approved header shape — any number of comment/blank
// lines, then #pragma once before any other code.

#pragma once

#include <string>

std::string early_guard();
