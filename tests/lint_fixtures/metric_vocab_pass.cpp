// Fixture: metric names drawn from the vocabulary test_lint supplies
// (exact names and one <placeholder> pattern), plus a dynamically built
// name — non-literal first arguments are skipped by design.
#include <string>

struct Registry {
  void counter(const char* name, double v);
  void counter(const std::string& name, double v);
  void histogram(const char* name, double v);
};

void record(Registry& reg, const std::string& backend) {
  reg.counter("sweep.points.total", 1.0);
  reg.counter("solver.mc.points", 3.0);  // matches solver.<backend>.points
  reg.histogram("sweep.point.seconds", 0.25);
  reg.counter("solver." + backend + ".points", 1.0);  // not a literal: skipped
}
