// Fixture: inline suppressions. The first site annotates its own line,
// the second puts the allow() in a multi-line rationale comment directly
// above the flagged line — both forms must silence raw-file-io.
#include <cstdio>
#include <fstream>

void primitives(const char* path) {
  std::rename("from", path);  // esched-lint: allow(raw-file-io): the claim primitive itself
  // esched-lint: allow(raw-file-io): streams into a unique temp file
  // that a later atomic_publish_file moves into place, so no reader
  // ever sees it under the final name.
  std::ofstream out(path);
}
