// Fixture: a header whose first code line is not #pragma once — the
// header-guard rule must fire (leading comments are fine, includes
// before the pragma are not).
#include <string>
#pragma once

std::string late_guard();
