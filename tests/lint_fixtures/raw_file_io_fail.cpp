// Fixture: raw file I/O inside an atomic-publication zone. test_lint
// feeds this content under a synthetic src/dist/ path, so every raw
// publication primitive below must fire raw-file-io.
#include <cstdio>
#include <fstream>

void publish_badly(const char* path) {
  std::ofstream out(path);  // torn file visible under the final name
  out << "partial";
  std::FILE* f = std::fopen(path, "wb");
  if (f != nullptr) std::fclose(f);
  std::rename("a.tmp", path);
}
