// Fixture: terminal output from library code — every line below must
// fire stream-output.
#include <cstdio>
#include <iostream>

void chatter(int n) {
  std::cout << "solved " << n << " points\n";
  std::clog << "note\n";
  printf("%d\n", n);
  puts("done");
  putchar('\n');
}
