// Fixture: nondeterministic sources in a solve path. Every line below
// must fire nondeterminism — any one of them silently breaks the
// N-thread == 1-thread bitwise determinism contract.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned bad_seed() {
  std::random_device entropy;  // per-run entropy: never reproducible
  unsigned seed = entropy();
  seed += static_cast<unsigned>(std::rand());
  std::srand(42);
  seed += static_cast<unsigned>(
      std::chrono::system_clock::now().time_since_epoch().count());
  seed += static_cast<unsigned>(std::time(nullptr));
  seed += static_cast<unsigned>(std::clock());
  return seed;
}
