// Integration tests: the cross-validation triangle. For each parameter
// point and policy, three independent implementations must agree:
//   (1) busy-period-transformation + QBD analysis   (core/analysis),
//   (2) exact truncated 2-D CTMC solve              (core/exact_ctmc),
//   (3) stochastic simulation                       (sim/).
// Agreement of all three is the strongest correctness signal the paper
// itself offers ("Our analytical results match simulation", §5).
#include <gtest/gtest.h>

#include "common/numeric.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/coupled.hpp"
#include "sim/ctmc_sim.hpp"
#include "sim/trace.hpp"

namespace esched {
namespace {

struct TriangleCase {
  int k;
  double mu_i;
  double mu_e;
  double rho;
};

class Triangle : public testing::TestWithParam<TriangleCase> {
 protected:
  SystemParams params() const {
    const TriangleCase& c = GetParam();
    return SystemParams::from_load(c.k, c.mu_i, c.mu_e, c.rho);
  }

  ExactCtmcOptions truncation(const SystemParams& p) const {
    ExactCtmcOptions opt;
    const long level = suggested_truncation(p.rho(), 1e-9);
    opt.imax = level;
    opt.jmax = level;
    return opt;
  }

  SimOptions sim_options() const {
    SimOptions opt;
    opt.num_jobs = 150000;
    opt.warmup_jobs = 15000;
    opt.seed = 7777;
    return opt;
  }
};

TEST_P(Triangle, IfAnalysisExactAndSimulationAgree) {
  const SystemParams p = params();
  const double analytic = analyze_inelastic_first(p).mean_response_time;
  const double exact =
      solve_exact_ctmc(p, InelasticFirst{}, truncation(p)).mean_response_time;
  const SimResult sim = simulate(p, InelasticFirst{}, sim_options());

  EXPECT_LT(relative_error(analytic, exact), 0.012) << "analysis vs exact";
  EXPECT_LT(relative_error(sim.mean_response_time.mean, exact), 0.05)
      << "simulation vs exact";
}

TEST_P(Triangle, EfAnalysisExactAndSimulationAgree) {
  const SystemParams p = params();
  const double analytic = analyze_elastic_first(p).mean_response_time;
  const double exact =
      solve_exact_ctmc(p, ElasticFirst{}, truncation(p)).mean_response_time;
  const SimResult sim = simulate(p, ElasticFirst{}, sim_options());

  EXPECT_LT(relative_error(analytic, exact), 0.012) << "analysis vs exact";
  EXPECT_LT(relative_error(sim.mean_response_time.mean, exact), 0.05)
      << "simulation vs exact";
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, Triangle,
    testing::Values(TriangleCase{4, 1.0, 1.0, 0.5},
                    TriangleCase{4, 1.0, 1.0, 0.8},
                    TriangleCase{4, 0.25, 1.0, 0.7},
                    TriangleCase{4, 3.25, 1.0, 0.7},
                    TriangleCase{2, 1.0, 2.0, 0.6},
                    TriangleCase{8, 2.0, 1.0, 0.7}));

// End-to-end Figure 4 spot checks: the sign of E[T^EF] - E[T^IF] from the
// analysis must match the sign from the exact solver AND from simulation.
TEST(Fig4SpotCheck, WinnerAgreesAcrossMethods) {
  const struct {
    double mu_i, mu_e, rho;
  } cases[] = {{2.0, 1.0, 0.9},   // IF region
               {0.25, 1.0, 0.9},  // EF region
               {1.5, 1.0, 0.5}};  // IF region, low load
  for (const auto& c : cases) {
    const SystemParams p = SystemParams::from_load(4, c.mu_i, c.mu_e, c.rho);
    const double d_analysis = analyze_elastic_first(p).mean_response_time -
                              analyze_inelastic_first(p).mean_response_time;
    ExactCtmcOptions opt;
    opt.imax = opt.jmax = suggested_truncation(p.rho(), 1e-9);
    const double d_exact =
        solve_exact_ctmc(p, ElasticFirst{}, opt).mean_response_time -
        solve_exact_ctmc(p, InelasticFirst{}, opt).mean_response_time;
    EXPECT_GT(d_analysis * d_exact, 0.0)
        << "winner disagreement at mu_i=" << c.mu_i << " rho=" << c.rho;
  }
}

// The work-decomposition identity behind Lemma 4: E[N] computed from job
// counts must equal mu * E[W] per class in simulation (exponential sizes).
TEST(Lemma4, WorkAndCountsRelateThroughMeanSize) {
  const SystemParams p = SystemParams::from_load(4, 2.0, 1.0, 0.7);
  SimOptions opt;
  opt.num_jobs = 200000;
  opt.warmup_jobs = 20000;
  opt.seed = 424242;
  const SimResult r = simulate(p, InelasticFirst{}, opt);
  // E[W] = E[W_I] + E[W_E] = E[N_I]/mu_I + E[N_E]/mu_E.
  const double expected_work =
      r.mean_jobs_i / p.mu_i + r.mean_jobs_e / p.mu_e;
  EXPECT_LT(relative_error(r.mean_work, expected_work), 0.05);
}

// Theorem 3 corollary at steady state: IF's time-average work is at most
// any class-P policy's on the same trace.
TEST(Theorem3Corollary, TimeAverageWorkOrdering) {
  const SystemParams p = SystemParams::from_load(4, 1.0, 1.0, 0.85);
  const Trace trace = generate_trace(p, 2000.0, 31);
  const WorkPath if_path = run_on_trace(trace, p, InelasticFirst{});
  const WorkPath ef_path = run_on_trace(trace, p, ElasticFirst{});
  // Integrate both paths over a common window via sampling.
  double if_area = 0.0;
  double ef_area = 0.0;
  const double t_end = trace.horizon;
  const int samples = 20000;
  for (int s = 0; s < samples; ++s) {
    const double t = t_end * (s + 0.5) / samples;
    if_area += if_path.total_work_at(t);
    ef_area += ef_path.total_work_at(t);
  }
  EXPECT_LE(if_area, ef_area * (1.0 + 1e-9));
}

}  // namespace
}  // namespace esched
