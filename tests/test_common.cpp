// Unit tests for common utilities: error macros, numeric helpers, the
// table printer, and the CSV writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/numeric.hpp"
#include "common/table.hpp"

namespace esched {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    ESCHED_CHECK(false, "something went wrong");
    FAIL() << "expected esched::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("something went wrong"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
  }
}

TEST(Error, AssertThrowsWithInvariantKind) {
  try {
    ESCHED_ASSERT(1 == 2, "broken invariant");
    FAIL() << "expected esched::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(Error, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(ESCHED_CHECK(true, "fine"));
  EXPECT_NO_THROW(ESCHED_ASSERT(true, "fine"));
}

TEST(Numeric, RelativeError) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(relative_error(0.9, 1.0), 0.1, 1e-12);
  // Near-zero reference falls back to absolute error.
  EXPECT_NEAR(relative_error(1e-3, 0.0), 1e-3, 1e-15);
}

TEST(Numeric, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.001, 1e-2));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
}

TEST(Numeric, Clamp) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(Table, PrintsAlignedRows) {
  Table t({"a", "long_header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsBadArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.23456789, 3), "1.23");
  EXPECT_EQ(format_double(100.0), "100");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "esched_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.add_row({"1", "2"});
    csv.add_row({"3", "4"});
    EXPECT_EQ(csv.num_rows(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Csv, RejectsBadArity) {
  const std::string path = testing::TempDir() + "esched_test2.csv";
  CsvWriter csv(path, {"x", "y"});
  EXPECT_THROW(csv.add_row({"1"}), Error);
  std::remove(path.c_str());
}

TEST(Csv, Rfc4180QuotingRoundTrips) {
  // Plain fields stay unquoted (canonical form)...
  EXPECT_EQ(csv_encode_field("1.25"), "1.25");
  EXPECT_EQ(csv_encode_row({"a", "b"}), "a,b");
  // ...fields with commas/quotes/newlines get quoted and escaped.
  EXPECT_EQ(csv_encode_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_encode_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_encode_field("two\nlines"), "\"two\nlines\"");

  const std::vector<std::string> cells = {"plain", "with,comma",
                                          "with \"quotes\"", "multi\nline",
                                          ""};
  EXPECT_EQ(csv_decode_row(csv_encode_row(cells)), cells);
}

TEST(Csv, WriterQuotesFieldsThatNeedIt) {
  const std::string path = testing::TempDir() + "esched_test3.csv";
  {
    CsvWriter csv(path, {"label", "value"});
    csv.add_row({"policy, with comma", "1"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "label,value");
  std::getline(in, line);
  EXPECT_EQ(line, "\"policy, with comma\",1");
  EXPECT_EQ(csv_decode_row(line),
            (std::vector<std::string>{"policy, with comma", "1"}));
  std::remove(path.c_str());
}

TEST(Csv, ParseRecordReportsTornLines) {
  // A complete record, then one cut off mid-write (no trailing newline):
  // the torn record must read as incomplete so a resuming streamer drops
  // and rewrites it.
  const std::string text = "a,\"b,1\"\nc,d";
  std::size_t offset = 0;
  std::vector<std::string> cells;
  bool complete = false;
  ASSERT_TRUE(csv_parse_record(text, &offset, &cells, &complete));
  EXPECT_TRUE(complete);
  EXPECT_EQ(cells, (std::vector<std::string>{"a", "b,1"}));
  ASSERT_TRUE(csv_parse_record(text, &offset, &cells, &complete));
  EXPECT_FALSE(complete);
  EXPECT_EQ(cells, (std::vector<std::string>{"c", "d"}));
  EXPECT_FALSE(csv_parse_record(text, &offset, &cells, &complete));

  // An unterminated quote is torn too, even mid-cell.
  offset = 0;
  ASSERT_TRUE(csv_parse_record("x,\"unclosed", &offset, &cells, &complete));
  EXPECT_FALSE(complete);

  // CRLF terminators are stripped for quoted and unquoted final cells
  // alike; a newline inside quotes is field content, not a terminator.
  offset = 0;
  ASSERT_TRUE(csv_parse_record("p,\"a,b\"\r\nq,r\r\n", &offset, &cells,
                               &complete));
  EXPECT_TRUE(complete);
  EXPECT_EQ(cells, (std::vector<std::string>{"p", "a,b"}));
  ASSERT_TRUE(csv_parse_record("p,\"a,b\"\r\nq,r\r\n", &offset, &cells,
                               &complete));
  EXPECT_EQ(cells, (std::vector<std::string>{"q", "r"}));
  offset = 0;
  ASSERT_TRUE(csv_parse_record("\"em\nbed\",2\n", &offset, &cells,
                               &complete));
  EXPECT_TRUE(complete);
  EXPECT_EQ(cells, (std::vector<std::string>{"em\nbed", "2"}));

  EXPECT_THROW(csv_decode_row("a,\"unclosed"), Error);
}

}  // namespace
}  // namespace esched
