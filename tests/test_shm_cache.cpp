// The mmap'd open-addressing result cache (engine/shm_cache): slot
// round-trips, the torn/corrupt-reads-as-miss guarantee, the spill and
// promotion paths between the table and the file tier, gc compaction, and
// a multi-thread x multi-process hammer with a writer killed mid-store —
// the survivors must only ever see valid-checksum hits.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/scenario.hpp"
#include "engine/shm_cache.hpp"
#include "engine/solver_dispatch.hpp"
#include "engine/sweep_runner.hpp"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define ESCHED_TEST_HAS_FORK 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#else
#define ESCHED_TEST_HAS_FORK 0
#endif

namespace esched {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

/// A RunResult whose every packed field is a pure function of `i`, so any
/// process/thread can independently derive what a hit for key i must be.
RunResult result_for(std::size_t i) {
  RunResult r;
  r.mean_response_time = 1.0 + 0.001 * static_cast<double>(i);
  r.mean_response_time_i = 2.0 + static_cast<double>(i);
  r.mean_response_time_e = 1.0 / (1.0 + static_cast<double>(i));
  r.mean_jobs_e = 0.5 * static_cast<double>(i);
  r.p50_i = 0.25 * static_cast<double>(i);
  r.p99_i = 7.0 * static_cast<double>(i) + 0.25;
  r.boundary_mass = 1e-9;
  r.num_states = static_cast<long>(100 + i);
  r.dom_checkpoints = static_cast<long>(i);
  r.solver_iterations = static_cast<int>(i % 97);
  r.solve_residual = 1e-12;
  r.solve_seconds = 0.125;
  return r;
}

std::string key_for(std::size_t i) {
  return "hammer;point=" + std::to_string(i);
}

/// Bitwise equality over every persisted field (numerically_equal ignores
/// provenance fields; this does not even tolerate -0.0 vs 0.0).
bool packed_identical(const RunResult& a, const RunResult& b) {
  std::vector<unsigned char> pa(run_result_packed_bytes());
  std::vector<unsigned char> pb(run_result_packed_bytes());
  pack_run_result(a, pa.data());
  pack_run_result(b, pb.data());
  return std::memcmp(pa.data(), pb.data(), pa.size()) == 0;
}

std::uint64_t read_u64_at(std::fstream& f, std::uint64_t offset) {
  f.seekg(static_cast<std::streamoff>(offset));
  std::uint64_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_u64_at(std::fstream& f, std::uint64_t offset, std::uint64_t v) {
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  f.flush();
}

/// File offset of the first slot holding `state`, or nullopt.
std::optional<std::uint64_t> find_slot_with_state(const ShmTableInfo& info,
                                                  std::fstream& f,
                                                  std::uint64_t state) {
  for (std::uint64_t i = 0; i < info.slot_count; ++i) {
    const std::uint64_t offset = info.header_bytes + i * info.slot_bytes;
    if (read_u64_at(f, offset) == state) return offset;
  }
  return std::nullopt;
}

TEST(PackedRunResult, RoundTripsBitwise) {
  RunResult r = result_for(41);
  r.mean_response_time = 1.0 / 3.0;
  r.ci_halfwidth = 1e-300;
  r.dom_max_violation = -0.0;
  std::vector<unsigned char> packed(run_result_packed_bytes());
  pack_run_result(r, packed.data());
  const RunResult back = unpack_run_result(packed.data());
  EXPECT_TRUE(packed_identical(r, back));
  EXPECT_EQ(back.num_states, r.num_states);
  EXPECT_EQ(back.solver_iterations, r.solver_iterations);
  EXPECT_EQ(std::signbit(back.dom_max_violation),
            std::signbit(r.dom_max_violation));
}

TEST(ShmCache, StoreLoadRoundTripAndMiss) {
  const std::string dir = fresh_dir("esched_shm_roundtrip");
  fs::create_directories(dir);
  auto table = ShmResultCache::open_or_create(dir, 256);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->slot_count(), 256u);

  EXPECT_FALSE(table->load(key_for(0)).has_value());
  EXPECT_TRUE(table->store(key_for(0), result_for(0)));
  const auto hit = table->load(key_for(0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(packed_identical(*hit, result_for(0)));
  EXPECT_FALSE(table->load(key_for(1)).has_value());
  // Re-storing an existing key is a no-op success (first writer wins).
  EXPECT_TRUE(table->store(key_for(0), result_for(0)));

  // A second mapping of the same file sees the entry (what worker
  // processes do).
  auto remapped = ShmResultCache::open_existing(dir);
  ASSERT_NE(remapped, nullptr);
  const auto rehit = remapped->load(key_for(0));
  ASSERT_TRUE(rehit.has_value());
  EXPECT_TRUE(packed_identical(*rehit, result_for(0)));

  const ShmTableInfo info = table->info();
  EXPECT_EQ(info.valid_slots, 1u);
  EXPECT_EQ(info.wedged_slots, 0u);
  EXPECT_EQ(info.payload_bytes, run_result_packed_bytes());
  fs::remove_all(dir);
}

TEST(ShmCache, OversizedKeySpillsToFileTier) {
  const std::string dir = fresh_dir("esched_shm_spill_key");
  const TieredResultCache cache(dir);
  ASSERT_NE(cache.table(), nullptr);
  const std::string long_key(cache.table()->key_capacity() + 1, 'k');
  EXPECT_FALSE(cache.table()->representable(long_key));

  cache.store(long_key, result_for(7));
  // The entry must live in the file tier and still round-trip.
  EXPECT_EQ(cache.table()->info().valid_slots, 0u);
  EXPECT_TRUE(fs::exists(cache.files().entry_path(long_key)));
  const auto hit = cache.load(long_key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(packed_identical(*hit, result_for(7)));
  // An oversized key can never be promoted; the file copy stays.
  EXPECT_TRUE(fs::exists(cache.files().entry_path(long_key)));
  fs::remove_all(dir);
}

TEST(ShmCache, FullTableSpillsAndEveryKeyStaysServable) {
  const std::string dir = fresh_dir("esched_shm_spill_full");
  TieredResultCache::Options options;
  options.create_slots = 64;  // kMinSlotCount: tiny on purpose
  const TieredResultCache cache(dir, options);
  ASSERT_NE(cache.table(), nullptr);
  constexpr std::size_t kKeys = 100;  // > slot count: some must spill
  for (std::size_t i = 0; i < kKeys; ++i) cache.store(key_for(i), result_for(i));
  const std::uint64_t in_table = cache.table()->info().valid_slots;
  EXPECT_LE(in_table, 64u);
  EXPECT_LT(in_table, kKeys);  // the overflow spilled...
  for (std::size_t i = 0; i < kKeys; ++i) {  // ...but nothing was lost
    const auto hit = cache.load(key_for(i));
    ASSERT_TRUE(hit.has_value()) << key_for(i);
    EXPECT_TRUE(packed_identical(*hit, result_for(i))) << key_for(i);
  }
  EXPECT_EQ(cache.list_entries().size(), kKeys);
  fs::remove_all(dir);
}

TEST(ShmCache, ChecksumCorruptionReadsAsMissNeverWrongResult) {
  const std::string dir = fresh_dir("esched_shm_corrupt");
  fs::create_directories(dir);
  auto table = ShmResultCache::open_or_create(dir, 64);
  ASSERT_NE(table, nullptr);
  ASSERT_TRUE(table->store("victim", result_for(3)));
  ASSERT_TRUE(table->load("victim").has_value());

  const ShmTableInfo info = table->info();
  std::fstream f(info.path,
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  const auto slot =
      find_slot_with_state(info, f, ShmResultCache::kStateValid);
  ASSERT_TRUE(slot.has_value());
  // Flip one payload byte behind the published checksum.
  const std::uint64_t victim_byte = *slot + info.payload_offset + 3;
  f.seekg(static_cast<std::streamoff>(victim_byte));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(static_cast<std::streamoff>(victim_byte));
  f.write(&b, 1);
  f.flush();

  // The slot is still `valid` with a matching key — only the checksum
  // knows. It must read as a miss, in this mapping and a fresh one.
  EXPECT_FALSE(table->load("victim").has_value());
  auto remapped = ShmResultCache::open_existing(dir);
  ASSERT_NE(remapped, nullptr);
  EXPECT_FALSE(remapped->load("victim").has_value());
  // The manifest skips it too, and compaction drops it.
  EXPECT_TRUE(table->list_entries().empty());
  table->compact(64);
  EXPECT_EQ(table->info().valid_slots, 0u);
  fs::remove_all(dir);
}

TEST(ShmCache, FileOnlyDirectoryUpgradesViaPromotion) {
  const std::string dir = fresh_dir("esched_shm_promote");
  {
    // Legacy state: per-entry files only, no table.
    const DiskResultCache files(dir);
    for (std::size_t i = 0; i < 5; ++i) files.store(key_for(i), result_for(i));
    ASSERT_FALSE(fs::exists(ShmResultCache::table_path(dir)));
  }
  const TieredResultCache cache(dir);
  ASSERT_NE(cache.table(), nullptr);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto hit = cache.load(key_for(i));
    ASSERT_TRUE(hit.has_value()) << key_for(i);
    EXPECT_TRUE(packed_identical(*hit, result_for(i)));
  }
  // Every touched key moved tiers: slot published, file retired, no
  // double counting in the manifest.
  EXPECT_EQ(cache.table()->info().valid_slots, 5u);
  EXPECT_TRUE(cache.files().list_entries(false).empty());
  const auto entries = cache.list_entries();
  ASSERT_EQ(entries.size(), 5u);
  for (const auto& entry : entries) EXPECT_EQ(entry.tier, "table");
  // Table hits on the second pass (files are gone, so this proves it).
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(cache.load(key_for(i)).has_value());
  }
  fs::remove_all(dir);
}

TEST(ShmCache, GcCompactsWedgedSlotsAndAppliesByteBudget) {
  const std::string dir = fresh_dir("esched_shm_gc");
  TieredResultCache::Options options;
  options.create_slots = 64;
  const TieredResultCache cache(dir, options);
  ASSERT_NE(cache.table(), nullptr);
  for (std::size_t i = 0; i < 10; ++i) cache.store(key_for(i), result_for(i));

  // Simulate a writer killed between its CAS claim and its publish.
  {
    const ShmTableInfo info = cache.table()->info();
    std::fstream f(info.path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const auto empty =
        find_slot_with_state(info, f, ShmResultCache::kStateEmpty);
    ASSERT_TRUE(empty.has_value());
    write_u64_at(f, *empty, ShmResultCache::kStateWriting);
  }
  EXPECT_EQ(cache.table()->info().wedged_slots, 1u);

  // An age-only gc touches no table entry but rebuilds away the wedge.
  const CacheGcResult aged = cache.gc(1e9, std::nullopt);
  EXPECT_EQ(aged.scanned, 10u);
  EXPECT_EQ(aged.removed, 0u);
  EXPECT_EQ(cache.table()->info().wedged_slots, 0u);
  EXPECT_EQ(cache.table()->info().valid_slots, 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache.load(key_for(i)).has_value()) << key_for(i);
  }

  // A byte budget for half the entries keeps the newest-stored half.
  const std::uint64_t slot_bytes = cache.table()->slot_bytes();
  const CacheGcResult half = cache.gc(std::nullopt, 5 * slot_bytes);
  EXPECT_EQ(half.removed, 5u);
  EXPECT_EQ(half.bytes_kept, 5 * slot_bytes);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(cache.load(key_for(i)).has_value()) << "oldest kept";
  }
  for (std::size_t i = 5; i < 10; ++i) {
    EXPECT_TRUE(cache.load(key_for(i)).has_value()) << "newest dropped";
  }

  // --max-bytes 0 empties the directory's entries entirely.
  const CacheGcResult all = cache.gc(std::nullopt, 0);
  EXPECT_EQ(all.removed, 5u);
  EXPECT_TRUE(cache.list_entries().empty());
  fs::remove_all(dir);
}

TEST(SweepRunner, TableCachePersistsAcrossRunnersWithoutEntryFiles) {
  const std::string dir = fresh_dir("esched_shm_sweep");
  Scenario s;
  s.name = "shm";
  s.k_values = {2, 4};
  s.rho_values = {0.5, 0.7};
  s.mu_i_values = {1.0};
  s.mu_e_values = {1.0};
  s.policies = {"IF", "EF"};
  s.solvers = {SolverKind::kQbdAnalysis};
  const auto points = s.expand();

  SweepRunner first(2);
  first.set_cache_dir(dir);
  SweepStats cold;
  const auto solved = first.run(points, &cold);
  EXPECT_EQ(cold.solved_points, points.size());

  // Everything landed in the table: no per-entry files were written.
  std::size_t result_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".result") ++result_files;
  }
  EXPECT_EQ(result_files, 0u);
  EXPECT_TRUE(fs::exists(ShmResultCache::table_path(dir)));

  SweepRunner second(2);
  second.set_cache_dir(dir);
  SweepStats warm;
  const auto loaded = second.run(points, &warm);
  EXPECT_EQ(warm.solved_points, 0u);
  EXPECT_EQ(warm.disk_hits, points.size());
  for (std::size_t n = 0; n < points.size(); ++n) {
    EXPECT_TRUE(loaded[n].from_cache);
    EXPECT_TRUE(numerically_equal(solved[n], loaded[n]))
        << points[n].cache_key();
  }
  fs::remove_all(dir);
}

#if ESCHED_TEST_HAS_FORK

/// Body of one hammer process: 4 threads interleave load/store over the
/// shared table, each verifying every hit against the key-derived
/// expectation. Returns 0 = clean, 1 = a wrong-result hit was observed,
/// 2 = could not map the table. Runs in forked children via _exit(), so
/// no gtest assertions here.
int hammer_process(const std::string& dir, std::size_t keys, unsigned salt) {
  auto table = ShmResultCache::open_existing(dir);
  if (table == nullptr) return 2;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t stride = 1 + ((salt + t) % 7);
      for (int round = 0; round < 40 && wrong.load() == 0; ++round) {
        for (std::size_t n = 0; n < keys; ++n) {
          const std::size_t i = (n * stride + t) % keys;
          const std::string key = key_for(i);
          if (const auto hit = table->load(key)) {
            if (!packed_identical(*hit, result_for(i))) {
              wrong.store(1);
              return;
            }
          }
          table->store(key, result_for(i));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  return wrong.load();
}

TEST(ShmCacheHammer, ThreadsTimesProcessesSurviveAMidStoreKill) {
  const std::string dir = fresh_dir("esched_shm_hammer");
  fs::create_directories(dir);
  constexpr std::size_t kKeys = 96;
  {
    auto table = ShmResultCache::open_or_create(dir, 512);
    ASSERT_NE(table, nullptr);
  }

  // Process 1: a doomed single-threaded writer storing in a loop; the
  // parent SIGKILLs it mid-store, which may wedge at most one slot.
  const pid_t victim = fork();
  ASSERT_GE(victim, 0);
  if (victim == 0) {
    auto table = ShmResultCache::open_existing(dir);
    if (table == nullptr) _exit(2);
    for (std::size_t n = 0;; ++n) {
      const std::size_t i = n % kKeys;
      table->store(key_for(i), result_for(i));
    }
  }

  // Process 2: the multi-threaded hammer (threads start after fork —
  // required under TSan, and the realistic worker shape anyway).
  const pid_t worker = fork();
  ASSERT_GE(worker, 0);
  if (worker == 0) _exit(hammer_process(dir, kKeys, 7));

  // The parent hammers the same table concurrently, and kills the victim
  // while all three processes are mid-traffic.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(kill(victim, SIGKILL), 0);
  EXPECT_EQ(hammer_process(dir, kKeys, 3), 0);

  int status = 0;
  ASSERT_EQ(waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  ASSERT_EQ(waitpid(worker, &status, 0), worker);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "a survivor saw a wrong result";

  // Post-mortem: every key is present and correct, the kill wedged at
  // most one slot, and gc's rebuild reclaims it without losing entries.
  auto table = ShmResultCache::open_existing(dir);
  ASSERT_NE(table, nullptr);
  for (std::size_t i = 0; i < kKeys; ++i) {
    const auto hit = table->load(key_for(i));
    ASSERT_TRUE(hit.has_value()) << key_for(i);
    EXPECT_TRUE(packed_identical(*hit, result_for(i))) << key_for(i);
  }
  const ShmTableInfo info = table->info();
  EXPECT_EQ(info.valid_slots, kKeys);
  EXPECT_LE(info.wedged_slots, 1u);
  TieredResultCache::Options options;
  options.create_table = false;
  const TieredResultCache cache(dir, options);
  ASSERT_NE(cache.table(), nullptr);
  cache.gc(1e9, std::nullopt);
  EXPECT_EQ(cache.table()->info().wedged_slots, 0u);
  EXPECT_EQ(cache.table()->info().valid_slots, kKeys);
  fs::remove_all(dir);
}

#endif  // ESCHED_TEST_HAS_FORK

}  // namespace
}  // namespace esched
