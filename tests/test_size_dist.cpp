// Tests for first-class size distributions: SizeDistSpec parsing and
// canonical forms, the mean-1/mu scaling convention, fitter round trips,
// the exp-spec bitwise-identity guarantee (cache keys, seeds, results, CSV
// bytes), the phase-type exact chain vs the base chain and vs simulation,
// backend rejections naming the offending option, and the RunOptions
// range validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/exact_ctmc.hpp"
#include "core/policies.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/solver_dispatch.hpp"
#include "engine/spec.hpp"
#include "engine/sweep_runner.hpp"
#include "phase/size_dist.hpp"

namespace esched {
namespace {

#define EXPECT_THROWS_NAMING(expr, needle)                                \
  do {                                                                    \
    try {                                                                 \
      (void)(expr);                                                       \
      ADD_FAILURE() << "expected esched::Error naming '" << (needle)      \
                    << "'";                                               \
    } catch (const Error& e) {                                            \
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)    \
          << "message was: " << e.what();                                 \
    }                                                                     \
  } while (0)

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SizeDistSpec, CanonicalFormsRoundTrip) {
  for (const char* text :
       {"exp", "erlang:3", "hyperexp:0.5,2,0.5", "coxian2:1,2,0.5",
        "ph-fit:1,3,20", "det", "lognormal:4", "pareto:3.5"}) {
    const SizeDistSpec spec = SizeDistSpec::parse(text);
    EXPECT_EQ(spec.canonical(), text);
    EXPECT_EQ(SizeDistSpec::parse(spec.canonical()), spec) << text;
  }
  // Default construction is the exponential.
  EXPECT_TRUE(SizeDistSpec().is_exponential());
  EXPECT_EQ(SizeDistSpec().canonical(), "exp");
  // Erlang-1 IS the exponential and normalizes to it (same cache keys).
  EXPECT_EQ(SizeDistSpec::parse("erlang:1"), SizeDistSpec());
  // Parameters re-emit in shortest round-trip form.
  EXPECT_EQ(SizeDistSpec::parse("erlang:03").canonical(), "erlang:3");
  EXPECT_EQ(SizeDistSpec::parse("lognormal:4.0").canonical(), "lognormal:4");
}

TEST(SizeDistSpec, MalformedSpecsAreNamed) {
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("weibull:2"), "weibull");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("weibull:2"), "erlang:n");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("erlang"), "expected 1");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("erlang:0"), "[1, 1000]");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("erlang:2.5"), "integer");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("erlang:x"), "not a finite");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("hyperexp:1.2,1,2"), "(0,1)");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("hyperexp:0.5,0,2"), "positive");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("hyperexp:0.5,1"), "expected 3");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("coxian2:1,1,1.5"), "[0,1]");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("lognormal:-1"), "> 0");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("pareto:2.5"), "> 3");
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("det:2"), "expected 0");
  // An invalid moment sequence fails at parse time, not at solve time.
  EXPECT_THROWS_NAMING(SizeDistSpec::parse("ph-fit:1,0.5,1"), "ph-fit");
}

TEST(SizeDistSpec, CompileScalesToClassMean) {
  for (const char* text :
       {"erlang:3", "hyperexp:0.4,2,0.5", "coxian2:1,2,0.5",
        "ph-fit:2,10,90", "det", "lognormal:4", "pareto:3.5"}) {
    for (const double mu : {0.5, 1.0, 2.0}) {
      const PhaseType dist = SizeDistSpec::parse(text).compile(mu);
      EXPECT_NEAR(dist.mean(), 1.0 / mu, 1e-9 / mu) << text << " mu=" << mu;
    }
    // The SCV is scale-free: compile(mu) preserves the shape.
    const SizeDistSpec spec = SizeDistSpec::parse(text);
    EXPECT_NEAR(spec.compile(2.0).scv(), spec.scv(), 1e-9) << text;
  }
  EXPECT_NEAR(SizeDistSpec::parse("erlang:4").scv(), 0.25, 1e-12);
  EXPECT_NEAR(SizeDistSpec::parse("det").scv(), 1.0 / 64.0, 1e-9);
  EXPECT_NEAR(SizeDistSpec::parse("lognormal:4").scv(), 4.0, 1e-9);
}

TEST(SizeDistSpec, PhFitRoundTripsMoments) {
  // ph-fit moments are matched exactly when Coxian-2-feasible; compile
  // rescales them to the class mean, so compare against scaled inputs.
  const Moments3 target{2.0, 10.0, 90.0};
  const double mu = 0.5;  // mean 2 == m1: no rescaling
  const Moments3 got = SizeDistSpec::parse("ph-fit:2,10,90")
                           .compile(mu)
                           .moments3();
  EXPECT_NEAR(got.m1, target.m1, 1e-9);
  EXPECT_NEAR(got.m2, target.m2, 1e-6);
  EXPECT_NEAR(got.m3, target.m3, 1e-4);
  // Scaling: moments of order n scale by (m1 * mu)^-n ... i.e. with mean
  // forced to 1/mu' the normalized moments are preserved.
  const Moments3 scaled = SizeDistSpec::parse("ph-fit:2,10,90")
                              .compile(2.0)
                              .moments3();
  EXPECT_NEAR(scaled.m1, 0.5, 1e-12);
  EXPECT_NEAR(scaled.m2 / (scaled.m1 * scaled.m1),
              target.m2 / (target.m1 * target.m1), 1e-6);
  EXPECT_NEAR(scaled.m3 / (scaled.m1 * scaled.m1 * scaled.m1),
              target.m3 / (target.m1 * target.m1 * target.m1), 1e-4);
  // The SCV == 1 lognormal boundary point falls back to the exponential
  // (the only SCV == 1 member of the Coxian-2 family) instead of throwing.
  const PhaseType ln1 = SizeDistSpec::parse("lognormal:1").compile(1.0);
  EXPECT_NEAR(ln1.mean(), 1.0, 1e-12);
  EXPECT_NEAR(ln1.scv(), 1.0, 1e-9);
}

RunPoint sim_point(const SizeDistSpec& dist_i, const SizeDistSpec& dist_e) {
  RunPoint point;
  point.params = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  point.policy = "IF";
  point.solver = SolverKind::kSimulation;
  point.options.sim_jobs = 20000;
  point.options.sim_warmup = 2000;
  point.options.size_dist_i = dist_i;
  point.options.size_dist_e = dist_e;
  return point;
}

TEST(SizeDist, ExplicitExpIsBitwiseIdenticalToImplicitExponential) {
  const RunPoint implicit = sim_point(SizeDistSpec(), SizeDistSpec());
  const RunPoint explicit_exp =
      sim_point(SizeDistSpec::parse("exp"), SizeDistSpec::parse("erlang:1"));
  // Cache key and derived seed are byte-identical, so existing disk-cache
  // entries stay valid and the RNG streams coincide.
  EXPECT_EQ(implicit.cache_key(), explicit_exp.cache_key());
  EXPECT_EQ(implicit.seed(), explicit_exp.seed());
  const RunResult a = dispatch_run(implicit);
  const RunResult b = dispatch_run(explicit_exp);
  EXPECT_TRUE(numerically_equal(a, b));

  // Same for the exact backend.
  RunPoint exact_a = implicit;
  exact_a.solver = SolverKind::kExactCtmc;
  exact_a.options.imax = exact_a.options.jmax = 30;
  RunPoint exact_b = explicit_exp;
  exact_b.solver = SolverKind::kExactCtmc;
  exact_b.options.imax = exact_b.options.jmax = 30;
  EXPECT_EQ(exact_a.cache_key(), exact_b.cache_key());
  EXPECT_TRUE(numerically_equal(dispatch_run(exact_a), dispatch_run(exact_b)));

  // And the CSV bytes: an exp-only report keeps the pre-refactor schema.
  const std::string path_a = testing::TempDir() + "sdist_exp_a.csv";
  const std::string path_b = testing::TempDir() + "sdist_exp_b.csv";
  write_csv_report(path_a, {implicit}, {a});
  write_csv_report(path_b, {explicit_exp}, {b});
  EXPECT_EQ(slurp(path_a), slurp(path_b));
  EXPECT_EQ(slurp(path_a).find("size_dist"), std::string::npos);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(SizeDist, NonExponentialSpecsExtendCacheKeyAndCsvSchema) {
  const RunPoint point = sim_point(SizeDistSpec::parse("erlang:3"),
                                   SizeDistSpec::parse("lognormal:4"));
  const std::string key = point.cache_key();
  EXPECT_NE(key.find("sdi=erlang:3"), std::string::npos) << key;
  EXPECT_NE(key.find("sde=lognormal:4"), std::string::npos) << key;
  EXPECT_NE(key, sim_point(SizeDistSpec(), SizeDistSpec()).cache_key());
  EXPECT_TRUE(report_has_size_dists({point}));

  const std::string path = testing::TempDir() + "sdist_ext.csv";
  write_csv_report(path, {point}, {RunResult{}});
  const std::string text = slurp(path);
  EXPECT_NE(text.find("size_dist_i,size_dist_e"), std::string::npos);
  EXPECT_NE(text.find("erlang:3,lognormal:4"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SizeDist, NonExpSpecsNeverCollideWithExpCacheKeysOnAnySolver) {
  // The rejecting solvers must also key on the size dists: a qbd point
  // with a non-exp size colliding with its exponential twin would make the
  // sweep runner's memo cache hand back the exponential result on a row
  // labelled otherwise, instead of the rejection error.
  for (const SolverKind solver :
       {SolverKind::kQbdAnalysis, SolverKind::kExactCtmc,
        SolverKind::kSimulation, SolverKind::kMmkBaseline,
        SolverKind::kTraceDominance}) {
    RunPoint exp_point = sim_point(SizeDistSpec(), SizeDistSpec());
    exp_point.solver = solver;
    RunPoint erl_point = sim_point(SizeDistSpec::parse("erlang:3"),
                                   SizeDistSpec());
    erl_point.solver = solver;
    EXPECT_NE(exp_point.cache_key(), erl_point.cache_key())
        << solver_name(solver);
  }
  // End to end: a mixed exp/non-exp axis over qbd fails with the named
  // rejection rather than silently reusing the exponential solve.
  Scenario scenario;
  scenario.name = "qbd-mixed";
  scenario.size_dists = {SizeDistSpec(), SizeDistSpec::parse("erlang:3")};
  scenario.policies = {"IF"};
  scenario.solvers = {SolverKind::kQbdAnalysis};
  SweepRunner runner(1);
  EXPECT_THROWS_NAMING(runner.run(scenario.expand()), "size_dist_i");
}

TEST(SizeDist, RejectingBackendsNameTheOffendingOption) {
  RunPoint point = sim_point(SizeDistSpec::parse("erlang:3"), SizeDistSpec());
  point.solver = SolverKind::kQbdAnalysis;
  EXPECT_THROWS_NAMING(dispatch_run(point), "size_dist_i");
  EXPECT_THROWS_NAMING(dispatch_run(point), "'qbd'");
  point.solver = SolverKind::kMmkBaseline;
  EXPECT_THROWS_NAMING(dispatch_run(point), "size_dist_i");
  point.solver = SolverKind::kTraceDominance;
  EXPECT_THROWS_NAMING(dispatch_run(point), "size_dist_i");
  // exact rejects phase-type *elastic* sizes only.
  RunPoint elastic = sim_point(SizeDistSpec(), SizeDistSpec::parse("erlang:3"));
  elastic.solver = SolverKind::kExactCtmc;
  EXPECT_THROWS_NAMING(dispatch_run(elastic), "size_dist_e");
}

TEST(SizeDist, PhExactChainMatchesBaseChainOnExponentialShape) {
  // coxian2:1,1,0 is a two-phase representation of the exponential (the
  // second phase is unreachable), so the augmented chain must agree with
  // the base chain to solver tolerance — same model, different state
  // encoding.
  const SystemParams params = SystemParams::from_load(4, 1.0, 1.0, 0.7);
  ExactCtmcOptions options;
  options.imax = options.jmax = 30;
  const PhaseType two_phase_exp =
      SizeDistSpec::parse("coxian2:1,1,0").compile(params.mu_i);
  for (const auto& policy :
       {PolicyPtr(make_inelastic_first()), PolicyPtr(make_elastic_first())}) {
    const ExactCtmcResult base = solve_exact_ctmc(params, *policy, options);
    const ExactCtmcResult ph =
        solve_exact_ctmc_ph(params, *policy, two_phase_exp, options);
    EXPECT_NEAR(ph.mean_response_time, base.mean_response_time,
                1e-7 * base.mean_response_time)
        << policy->name();
    EXPECT_NEAR(ph.mean_jobs_i, base.mean_jobs_i, 1e-6) << policy->name();
    EXPECT_NEAR(ph.mean_jobs_e, base.mean_jobs_e, 1e-6) << policy->name();
  }
}

TEST(SizeDist, PhExactChainMatchesSimulationWithinCi) {
  // The acceptance check: erlang:3 inelastic sizes on both backends give
  // mutually consistent E[T] (exact within the simulation's 95% CI plus
  // slack for the truncation).
  RunOptions options;
  options.size_dist_i = SizeDistSpec::parse("erlang:3");
  options.imax = options.jmax = 40;
  options.sim_jobs = 400000;
  options.sim_warmup = 40000;
  for (const char* policy : {"IF", "EF"}) {
    RunPoint exact;
    exact.params = SystemParams::from_load(4, 1.0, 1.0, 0.6);
    exact.policy = policy;
    exact.solver = SolverKind::kExactCtmc;
    exact.options = options;
    RunPoint sim = exact;
    sim.solver = SolverKind::kSimulation;
    const RunResult exact_result = dispatch_run(exact);
    const RunResult sim_result = dispatch_run(sim);
    EXPECT_GT(exact_result.mean_response_time, 0.0);
    EXPECT_LT(exact_result.boundary_mass, 1e-6);
    EXPECT_NEAR(exact_result.mean_response_time,
                sim_result.mean_response_time,
                3.0 * sim_result.ci_halfwidth + 1e-3)
        << policy;
  }
}

TEST(SizeDist, PhExactChainRejectsUnsupportedShapes) {
  const SystemParams params = SystemParams::from_load(4, 1.0, 1.0, 0.6);
  ExactCtmcOptions options;
  options.imax = options.jmax = 20;
  const PhaseType erl3 = SizeDistSpec::parse("erlang:3").compile(params.mu_i);
  // FairShare hands inelastic jobs fractional servers.
  EXPECT_THROWS_NAMING(solve_exact_ctmc_ph(params, *make_fair_share(), erl3,
                                           options),
                       "fractional");
  // Cap2 preempts part of the in-service inelastic set when elastic jobs
  // arrive (allocation drops 4 -> 2): not all-or-nothing.
  EXPECT_THROWS_NAMING(solve_exact_ctmc_ph(params, *make_inelastic_cap(2),
                                           erl3, options),
                       "all-or-nothing");
  // det compiles to 64 phases, past the exact backend's limit.
  const PhaseType det = SizeDistSpec::parse("det").compile(params.mu_i);
  EXPECT_THROWS_NAMING(solve_exact_ctmc_ph(params, *make_inelastic_first(),
                                           det, options),
                       "at most 16");
}

TEST(SizeDist, ScenarioAxisSetsBothClassesAndMultipliesThePointCount) {
  Scenario scenario;
  scenario.name = "axis";
  scenario.size_dists = {SizeDistSpec::parse("exp"),
                         SizeDistSpec::parse("erlang:2")};
  scenario.policies = {"IF"};
  scenario.solvers = {SolverKind::kSimulation};
  EXPECT_EQ(scenario.num_points(), 2u);
  const auto points = scenario.expand();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_TRUE(points[0].options.size_dist_i.is_exponential());
  EXPECT_TRUE(points[0].options.size_dist_e.is_exponential());
  EXPECT_EQ(points[1].options.size_dist_i.canonical(), "erlang:2");
  EXPECT_EQ(points[1].options.size_dist_e.canonical(), "erlang:2");
  // The axis does not disturb per-class options when absent.
  Scenario no_axis;
  no_axis.options.size_dist_i = SizeDistSpec::parse("erlang:3");
  no_axis.solvers = {SolverKind::kSimulation};
  const auto plain = no_axis.expand();
  EXPECT_EQ(plain.front().options.size_dist_i.canonical(), "erlang:3");
}

TEST(SizeDist, SpecLoaderParsesAxisAndOptionsWithNamedErrors) {
  const Scenario s = parse_scenario_text(
      R"({"name": "sd", "axes": {
            "size_dist": ["exp", "erlang:3", "lognormal:4"],
            "policy": ["IF"], "solver": ["sim"]},
          "options": {"size_dist_e": "hyperexp:0.5,2,0.5"}})",
      "t");
  ASSERT_EQ(s.size_dists.size(), 3u);
  EXPECT_EQ(s.size_dists[1].canonical(), "erlang:3");
  EXPECT_EQ(s.options.size_dist_e.canonical(), "hyperexp:0.5,2,0.5");
  EXPECT_EQ(s.num_points(), 3u);

  EXPECT_THROWS_NAMING(
      parse_scenario_text(
          R"({"axes": {"size_dist": ["nope"], "solver": ["sim"]}})", "t"),
      "axes.size_dist[0]");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(
          R"({"options": {"size_dist_i": "erlang:0"}})", "t"),
      "options.size_dist_i");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(R"({"options": {"size_dist": "exp"}})", "t"),
      "size_dist");

  // Round trip: canonical forms survive serialize -> parse.
  const Scenario again =
      parse_scenario_text(scenario_to_json(s).dump(), "roundtrip");
  ASSERT_EQ(again.size_dists.size(), 3u);
  EXPECT_EQ(again.size_dists[2], s.size_dists[2]);
  EXPECT_EQ(again.options.size_dist_e, s.options.size_dist_e);
}

TEST(RunOptionsValidation, DegenerateNumericOptionsAreRejected) {
  RunOptions options;
  options.validate();  // defaults are fine
  options.sim_jobs = 100;
  options.sim_warmup = 200;
  EXPECT_THROWS_NAMING(options.validate(), "sim_warmup");
  options = RunOptions{};
  options.trace_horizon = 0.0;
  EXPECT_THROWS_NAMING(options.validate(), "trace_horizon");
  options = RunOptions{};
  options.sim_tail_bins = 0;
  EXPECT_THROWS_NAMING(options.validate(), "sim_tail_bins");
  options = RunOptions{};
  options.truncation_epsilon = 1.5;
  EXPECT_THROWS_NAMING(options.validate(), "truncation_epsilon");

  // Scenario::validate (and therefore expand / the spec loader) calls it.
  Scenario scenario;
  scenario.name = "degenerate";
  scenario.options.sim_jobs = 10;
  scenario.options.sim_warmup = 50;
  EXPECT_THROWS_NAMING(scenario.expand(), "sim_warmup");
  EXPECT_THROWS_NAMING(
      parse_scenario_text(
          R"({"options": {"sim_jobs": 10, "sim_warmup": 50}})", "t"),
      "sim_warmup");
}

TEST(SizeDist, ShardsOfMixedSweepShareOneHeaderViaExplicitSchemaFlag) {
  // A mixed exp/non-exp size_dist sweep sliced into shards: the all-exp
  // slice must still carry the size_dist columns (schema derives from the
  // FULL sweep, not the slice), or `esched merge` refuses the shards.
  Scenario scenario;
  scenario.name = "mixed";
  scenario.size_dists = {SizeDistSpec::parse("exp"),
                         SizeDistSpec::parse("erlang:3")};
  scenario.policies = {"IF"};
  scenario.solvers = {SolverKind::kSimulation};
  const auto full = scenario.expand();
  ASSERT_EQ(full.size(), 2u);
  const bool schema = report_has_size_dists(full);
  EXPECT_TRUE(schema);
  const std::string shard0 = testing::TempDir() + "sdist_shard0.csv";
  const std::string shard1 = testing::TempDir() + "sdist_shard1.csv";
  write_csv_report(shard0, {full[0]}, {RunResult{}}, schema);
  write_csv_report(shard1, {full[1]}, {RunResult{}}, schema);
  const std::string header0 = slurp(shard0).substr(0, slurp(shard0).find('\n'));
  const std::string header1 = slurp(shard1).substr(0, slurp(shard1).find('\n'));
  EXPECT_EQ(header0, header1);
  EXPECT_NE(header0.find("size_dist_i"), std::string::npos);
  // The exp slice alone would have derived the narrow schema — the bug
  // the explicit flag exists to prevent.
  EXPECT_FALSE(report_has_size_dists({full[0]}));
  std::remove(shard0.c_str());
  std::remove(shard1.c_str());
}

TEST(SizeDist, ExpOnlyAxisOverridesNonExpOptionsAndKeepsNarrowSchema) {
  // axes.size_dist overwrites BOTH classes per point, so an all-exp axis
  // over non-exp options expands to exponential points — and the schema,
  // derived from the expansion, stays the pre-refactor one. (The CLI's
  // streaming flag derives from the same expansion, so batch and stream
  // agree.)
  const Scenario s = parse_scenario_text(
      R"({"name": "override", "axes": {
            "size_dist": ["exp"], "policy": ["IF"], "solver": ["sim"]},
          "options": {"size_dist_i": "erlang:3"}})",
      "t");
  const auto points = s.expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].options.size_dist_i.is_exponential());
  EXPECT_FALSE(report_has_size_dists(points));
}

TEST(SizeDist, StreamedReportWithSizeDistsMatchesBatchBytes) {
  const RunPoint point = sim_point(SizeDistSpec::parse("erlang:2"),
                                   SizeDistSpec());
  const RunResult result = dispatch_run(point);
  const std::string batch_path = testing::TempDir() + "sdist_batch.csv";
  const std::string stream_path = testing::TempDir() + "sdist_stream.csv";
  write_csv_report(batch_path, {point}, {result});
  {
    StreamingCsvReport report(stream_path, /*resume=*/false,
                              /*with_size_dist=*/true);
    report.add_row(0, point, result);
    report.finish(1);
  }
  EXPECT_EQ(slurp(batch_path), slurp(stream_path));
  std::remove(batch_path.c_str());
  std::remove(stream_path.c_str());
}

}  // namespace
}  // namespace esched
