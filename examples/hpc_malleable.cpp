// HPC cluster with malleable jobs (paper §1.3, third example).
//
// HPC workloads mix MALLEABLE jobs (elastic: run on any number of cores)
// with RIGID jobs (inelastic: demand a fixed allocation). Unlike the
// MapReduce and ML settings, here it is NOT clear which class carries
// more work — and that is exactly the regime where the paper's answer
// flips. This example walks the mu_I / mu_E ratio across 1.0 and shows
// the policy crossover, the Theorem 6 transient counterexample, and how
// an operator can use the library to pick a policy for their measured
// workload mix.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/ef_analysis.hpp"
#include "core/if_analysis.hpp"
#include "core/no_arrivals.hpp"
#include "core/policies.hpp"

int main() {
  using namespace esched;
  constexpr int kCores = 8;
  constexpr double kMuMalleable = 1.0;  // elastic job size rate (fixed)

  std::printf("=== HPC cluster: malleable (elastic) vs rigid (inelastic) "
              "jobs, k = %d, rho = 0.85 ===\n",
              kCores);
  std::printf("Sweeping rigid-job mean size around the malleable mean: the "
              "optimal policy flips.\n\n");

  Table table({"rigid mean size", "mu_I/mu_E", "E[T] IF", "E[T] EF",
               "recommended"});
  for (double mu_i : {4.0, 2.0, 1.0, 0.5, 0.33, 0.25}) {
    const SystemParams p =
        SystemParams::from_load(kCores, mu_i, kMuMalleable, 0.85);
    const double et_if = analyze_inelastic_first(p).mean_response_time;
    const double et_ef = analyze_elastic_first(p).mean_response_time;
    table.add_row({format_double(1.0 / mu_i, 3), format_double(mu_i, 3),
                   format_double(et_if), format_double(et_ef),
                   et_if <= et_ef ? "rigid-first (IF)"
                                  : "malleable-first (EF)"});
  }
  table.print(std::cout);
  std::printf("\nWhile rigid jobs are smaller (mu_I >= mu_E = 1) IF is "
              "provably optimal (Theorem 5). Once rigid jobs get large "
              "enough, EF takes over — the region the paper leaves open.\n\n");

  // The transient intuition in miniature (Theorem 6): two rigid jobs and
  // one small malleable job on two cores.
  SystemParams t6;
  t6.k = 2;
  t6.mu_i = 1.0;
  t6.mu_e = 2.0;
  const double et_if = mean_response_time_no_arrivals(
      t6, InelasticFirst{}, {2, 1});
  const double et_ef = mean_response_time_no_arrivals(
      t6, ElasticFirst{}, {2, 1});
  std::printf("Theorem 6 drain-down check (2 rigid + 1 small malleable, "
              "k=2): IF %.4f vs EF %.4f — running the small malleable job "
              "first wins.\n",
              et_if, et_ef);
  return 0;
}
