#!/usr/bin/env bash
# Distributed sweep quickstart: one queue directory, several worker
# processes (kill any of them freely), one byte-exact collected report.
#
# Run from the repo root after building:
#   cmake -B build -S . && cmake --build build -j
#   bash examples/queue_quickstart.sh
#
# Everything happens under ./queue-quickstart/; remove it to rerun.
set -euo pipefail

ESCHED=${ESCHED:-./build/esched}
DIR=queue-quickstart
Q=$DIR/q
rm -rf "$DIR" && mkdir -p "$DIR"

# The reference: the ordinary single-process run of the same sweep.
"$ESCHED" run fig6 --threads 2 --out "$DIR/direct.csv" > /dev/null

# 1. Expand the sweep into chunked task files. The queue embeds the
#    scenario specs, so workers need only the directory — on this
#    machine or any machine sharing the filesystem.
"$ESCHED" queue init fig6 --queue-dir "$Q" --chunk 8

# 2. Start workers. Each claims a chunk by atomic rename, solves it
#    through the sweep engine, commits the chunk's CSV/JSON atomically,
#    and moves on. Run as many as you like, whenever you like; a shared
#    --cache-dir makes re-solves after crashes cheap.
"$ESCHED" work --queue-dir "$Q" --cache-dir "$DIR/cache" --lease-ttl 30 &
W1=$!
"$ESCHED" work --queue-dir "$Q" --cache-dir "$DIR/cache" --lease-ttl 30
wait "$W1"

# (If a worker dies mid-chunk — kill -9, OOM, power loss — its lease's
# heartbeat goes stale and a surviving worker requeues the chunk. Try it:
# kill one of the workers above and rerun `esched work`.)

# 3. Watch progress from anywhere (safe while workers run).
"$ESCHED" status --queue-dir "$Q"

# 4. Collect: validates every chunk committed, merges the chunk CSVs in
#    chunk order. The result is byte-identical to the single-process run.
"$ESCHED" collect --queue-dir "$Q" --out "$DIR/collected.csv" \
    --json "$DIR/collected.json"
cmp "$DIR/direct.csv" "$DIR/collected.csv"
echo "collected report is byte-identical to the single-process run"
