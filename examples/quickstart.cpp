// Quickstart: the esched public API in ~40 effective lines.
//
// Model a 4-server cluster with elastic and inelastic jobs, analyze both
// allocation policies exactly, cross-check by simulation, and pick the
// right policy for the workload.
//
//   $ ./quickstart
#include <cstdio>

#include "core/ef_analysis.hpp"
#include "core/if_analysis.hpp"
#include "core/params.hpp"
#include "core/policies.hpp"
#include "sim/cluster_sim.hpp"

int main() {
  using namespace esched;

  // A cluster: k = 4 servers. Inelastic jobs (single-server) have mean
  // size 1/mu_I = 0.5; elastic jobs (linearly parallelizable) have mean
  // size 1/mu_E = 1. Arrivals split evenly, total load rho = 0.7.
  const SystemParams params = SystemParams::from_load(
      /*k=*/4, /*mu_i=*/2.0, /*mu_e=*/1.0, /*rho=*/0.7);
  std::printf("cluster: k=%d, lambda_I=%.3f, lambda_E=%.3f, rho=%.2f\n",
              params.k, params.lambda_i, params.lambda_e, params.rho());

  // Analyze both policies (busy-period transformation + matrix-analytic).
  const ResponseTimeAnalysis et_if = analyze_inelastic_first(params);
  const ResponseTimeAnalysis et_ef = analyze_elastic_first(params);
  std::printf("analysis:   E[T^IF] = %.4f   E[T^EF] = %.4f\n",
              et_if.mean_response_time, et_ef.mean_response_time);

  // Inelastic jobs are smaller on average (mu_I >= mu_E), so the paper's
  // Theorem 5 says Inelastic-First is optimal — the analysis agrees.
  std::printf("mu_I >= mu_E, so Theorem 5 predicts IF optimal: %s\n",
              et_if.mean_response_time <= et_ef.mean_response_time
                  ? "confirmed"
                  : "VIOLATED?");

  // Cross-check by discrete-event simulation (per-job response times).
  SimOptions opt;
  opt.num_jobs = 100000;
  opt.warmup_jobs = 10000;
  const SimResult sim = simulate(params, InelasticFirst{}, opt);
  std::printf("simulation: E[T^IF] = %.4f +- %.4f (95%% CI), "
              "utilization %.2f\n",
              sim.mean_response_time.mean, sim.mean_response_time.half_width,
              sim.utilization);
  std::printf("per class:  inelastic %.4f, elastic %.4f\n",
              sim.inelastic.response_time.mean,
              sim.elastic.response_time.mean);
  return 0;
}
