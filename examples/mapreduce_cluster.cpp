// MapReduce-style cluster (paper §1.3, first motivating example).
//
// A shared cluster processes a stream of map stages and reduce stages:
//  - map stages are ELASTIC: they parallelize across any number of
//    servers and carry a large amount of work;
//  - reduce stages are INELASTIC: inherently sequential and much smaller.
// Elastic jobs larger than inelastic jobs means mu_I > mu_E: exactly the
// regime where the paper proves Inelastic-First optimal. This example
// sizes the policies against each other across the load range and shows
// the cost of picking the wrong one.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/ef_analysis.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "sim/cluster_sim.hpp"

int main() {
  using namespace esched;
  // 16-server cluster. Map stages: mean work 8 server-seconds (mu_E =
  // 0.125). Reduce stages: mean work 0.5 server-seconds (mu_I = 2).
  constexpr int kServers = 16;
  constexpr double kMuMap = 0.125;
  constexpr double kMuReduce = 2.0;

  std::printf("=== MapReduce cluster: elastic map stages (mean work %.1f), "
              "inelastic reduce stages (mean work %.2f), k = %d ===\n",
              1.0 / kMuMap, 1.0 / kMuReduce, kServers);

  Table table({"rho", "E[T] IF", "E[T] EF", "EF penalty"});
  for (double rho : {0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) {
    const SystemParams p =
        SystemParams::from_load(kServers, kMuReduce, kMuMap, rho);
    const double et_if = analyze_inelastic_first(p).mean_response_time;
    const double et_ef = analyze_elastic_first(p).mean_response_time;
    table.add_row({format_double(rho), format_double(et_if),
                   format_double(et_ef),
                   format_double(100.0 * (et_ef / et_if - 1.0), 3) + "%"});
  }
  table.print(std::cout);
  std::printf("\nReduce-first (IF) wins at every load — deferring the "
              "parallelizable map work keeps all %d servers busy "
              "(Theorem 5, since mu_I > mu_E).\n\n",
              kServers);

  // What a deployment would actually observe, per class, at rho = 0.8.
  const SystemParams p =
      SystemParams::from_load(kServers, kMuReduce, kMuMap, 0.8);
  SimOptions opt;
  opt.num_jobs = 80000;
  opt.warmup_jobs = 8000;
  for (const auto& policy : {make_inelastic_first(), make_elastic_first()}) {
    const SimResult r = simulate(p, *policy, opt);
    std::printf("%-3s @ rho=0.8: E[T]=%.3f  reduce(T)=%.3f  map(T)=%.3f  "
                "util=%.2f\n",
                policy->name().c_str(), r.mean_response_time.mean,
                r.inelastic.response_time.mean, r.elastic.response_time.mean,
                r.utilization);
  }
  std::printf("\nNote the trade: IF slows map stages slightly but "
              "collapses reduce-stage latency, winning on the mean.\n");
  return 0;
}
