// ML training + serving platform (paper §1.3, second motivating example).
//
// One platform hosts both model TRAINING (elastic: distributed SGD scales
// across nodes, jobs are large) and model SERVING (inelastic: a single
// inference is sequential and tiny). The example sweeps the traffic mix —
// what happens as serving traffic grows relative to training — and shows
// how the optimal policy (IF, by Theorem 5) holds up, including tail-ish
// diagnostics from simulation histograms.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/ef_analysis.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "sim/cluster_sim.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace esched;
  constexpr int kServers = 8;
  constexpr double kMuTrain = 0.1;   // mean training job: 10 server-hours
  constexpr double kMuServe = 20.0;  // mean inference: 0.05 hours

  std::printf("=== ML platform: elastic training (mean %.0f), inelastic "
              "serving (mean %.3f), k = %d ===\n",
              1.0 / kMuTrain, 1.0 / kMuServe, kServers);

  // Sweep the serving share of total load at fixed rho = 0.8.
  constexpr double kRho = 0.8;
  Table table({"serving share", "lambda_serve", "lambda_train", "E[T] IF",
               "E[T] EF", "winner"});
  for (double share : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    SystemParams p;
    p.k = kServers;
    p.mu_i = kMuServe;
    p.mu_e = kMuTrain;
    // rho_I = share * rho, rho_E = (1-share) * rho.
    p.lambda_i = share * kRho * kServers * kMuServe;
    p.lambda_e = (1.0 - share) * kRho * kServers * kMuTrain;
    const double et_if = analyze_inelastic_first(p).mean_response_time;
    const double et_ef = analyze_elastic_first(p).mean_response_time;
    table.add_row({format_double(share, 2), format_double(p.lambda_i),
                   format_double(p.lambda_e), format_double(et_if),
                   format_double(et_ef), et_if <= et_ef ? "IF" : "EF"});
  }
  table.print(std::cout);
  std::printf("\nServing-first (IF) wins across the whole mix: inference "
              "requests are vastly smaller (mu_I >> mu_E).\n\n");

  // Simulated latency distribution of inference requests under each
  // policy at a 50/50 load split: the operational argument for IF.
  SystemParams p;
  p.k = kServers;
  p.mu_i = kMuServe;
  p.mu_e = kMuTrain;
  p.lambda_i = 0.5 * kRho * kServers * kMuServe;
  p.lambda_e = 0.5 * kRho * kServers * kMuTrain;
  SimOptions opt;
  opt.num_jobs = 150000;
  opt.warmup_jobs = 15000;
  for (const auto& policy : {make_inelastic_first(), make_elastic_first()}) {
    const SimResult r = simulate(p, *policy, opt);
    std::printf("%-3s: inference E[T] = %.4f h; training E[T] = %.2f h; "
                "overall %.3f h\n",
                policy->name().c_str(), r.inelastic.response_time.mean,
                r.elastic.response_time.mean, r.mean_response_time.mean);
  }
  std::printf("\nUnder EF every training burst stalls all inference "
              "traffic; IF caps inference latency near its service time "
              "while training jobs barely notice.\n");
  return 0;
}
