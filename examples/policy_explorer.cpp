// Policy explorer: compare the whole shipped policy family on one
// workload, three ways — QBD analysis (IF/EF only), exact truncated chain
// (any policy), and simulation — and print a consistency report. This is
// the template for evaluating a custom AllocationPolicy: implement the
// interface, add it to the list, rebuild.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "core/ef_analysis.hpp"
#include "core/exact_ctmc.hpp"
#include "core/if_analysis.hpp"
#include "core/policies.hpp"
#include "sim/cluster_sim.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  // Optional args: k mu_i mu_e rho.
  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  const double mu_i = argc > 2 ? std::atof(argv[2]) : 1.5;
  const double mu_e = argc > 3 ? std::atof(argv[3]) : 1.0;
  const double rho = argc > 4 ? std::atof(argv[4]) : 0.8;
  const SystemParams p = SystemParams::from_load(k, mu_i, mu_e, rho);

  std::printf("=== Policy explorer: k=%d mu_I=%.3g mu_E=%.3g rho=%.2f "
              "(lambda_I = lambda_E = %.4f) ===\n",
              k, mu_i, mu_e, rho, p.lambda_i);

  std::vector<PolicyPtr> family = {make_inelastic_first(),
                                   make_elastic_first(), make_fair_share()};
  for (int cap = 1; cap < k; ++cap) family.push_back(make_inelastic_cap(cap));

  ExactCtmcOptions opt;
  opt.imax = opt.jmax = suggested_truncation(p.rho(), 1e-9);
  SimOptions sopt;
  sopt.num_jobs = 60000;
  sopt.warmup_jobs = 6000;

  Table table({"policy", "exact E[T]", "sim E[T]", "95% CI", "QBD E[T]"});
  double best_et = 1e300;
  std::string best_name;
  for (const auto& policy : family) {
    const double exact =
        solve_exact_ctmc(p, *policy, opt).mean_response_time;
    const SimResult sim = simulate(p, *policy, sopt);
    std::string qbd = "-";
    if (policy->name() == "IF") {
      qbd = format_double(analyze_inelastic_first(p).mean_response_time);
    } else if (policy->name() == "EF") {
      qbd = format_double(analyze_elastic_first(p).mean_response_time);
    }
    if (exact < best_et) {
      best_et = exact;
      best_name = policy->name();
    }
    table.add_row({policy->name(), format_double(exact),
                   format_double(sim.mean_response_time.mean),
                   "+-" + format_double(sim.mean_response_time.half_width, 3),
                   qbd});
  }
  table.print(std::cout);
  std::printf("\nbest policy for this workload: %s (E[T] = %.4f)\n",
              best_name.c_str(), best_et);
  std::printf("(mu_I %s mu_E: Theorem 5 %s that IF is optimal)\n",
              mu_i >= mu_e ? ">=" : "<",
              mu_i >= mu_e ? "guarantees" : "does not apply, so it is open");
  return 0;
}
